//! Multi-model request routing over replica groups of engines.
//!
//! A [`Router`] owns, per deployed model, a *replica group*: N
//! independent [`Engine`]s all serving the same artifact version.
//! [`Router::submit`] picks a replica with rendezvous hashing —
//! FNV-1a over `(model_id, replica, seq)` ranks the replicas, the
//! least-loaded of the top two ranked replicas gets the request, and
//! lower-ranked replicas are tried in order when the pick sheds with
//! `QueueFull` — so routing is reproducible (same submission sequence,
//! same placement, modulo explicit queue-full failover) without
//! pinning all traffic to one engine.
//!
//! Admission control runs *before* routing: an optional fleet-level
//! per-tenant token bucket turns excess tenant traffic away with
//! [`ServeError::RateLimited`] while other tenants keep their
//! capacity. Engine-level quotas remain available underneath but a
//! fleet normally gates at this layer, where one tenant's budget spans
//! every replica instead of resetting per engine.
//!
//! Failure stays typed end to end: every error a caller can see is a
//! [`FleetError`] wrapping either a routing fault (unknown model,
//! killed group, deploy-time compile failure) or the underlying
//! [`ServeError`]. [`Router::kill_group`] (and the chaos-plan driven
//! [`Router::apply_chaos`]) drop a whole replica group under load to
//! prove that: in-flight tickets drain with answers, later submissions
//! fail fast with [`FleetError::ModelDown`], other models are
//! untouched, and [`Router::deploy`] brings the group back.

use crate::registry::ModelVersion;
use csq_core::fault::ChaosPlan;
use csq_serve::{
    ArtifactError, Engine, EngineConfig, EngineStats, ServeError, SubmitOptions, TenantQuota,
    Ticket,
};
use csq_tensor::Tensor;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Fleet-wide tuning: replica fan-out, the per-engine configuration
/// every replica starts with, and the optional fleet-level tenant
/// quota.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Engines per deployed model (minimum 1).
    pub replicas_per_model: usize,
    /// Configuration each replica engine is started with.
    pub engine: EngineConfig,
    /// Fleet-level per-tenant token bucket, applied in
    /// [`Router::submit`] before a replica is picked. `None` disables
    /// fleet admission control; tenantless requests always bypass it.
    pub tenant_quota: Option<TenantQuota>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas_per_model: 2,
            engine: EngineConfig::default(),
            tenant_quota: None,
        }
    }
}

/// Why the fleet could not serve (or deploy for) a request.
#[derive(Debug)]
pub enum FleetError {
    /// The model id has never been deployed to this router.
    UnknownModel {
        /// The id that missed.
        model_id: String,
    },
    /// The model's replica group was killed and not yet redeployed.
    ModelDown {
        /// The killed model.
        model_id: String,
    },
    /// A deploy could not compile the artifact into an executor.
    Compile {
        /// The model being deployed.
        model_id: String,
        /// The underlying artifact failure.
        error: ArtifactError,
    },
    /// The request reached an engine and failed there with a typed
    /// serving error (queue full on every ranked replica, rate limit,
    /// bad input shape, deadline, worker failure, ...).
    Serve(ServeError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::UnknownModel { model_id } => {
                write!(f, "model `{model_id}` is not deployed on this router")
            }
            FleetError::ModelDown { model_id } => write!(
                f,
                "model `{model_id}`'s replica group is down (killed and not redeployed)"
            ),
            FleetError::Compile { model_id, error } => {
                write!(f, "deploying model `{model_id}` failed to compile: {error}")
            }
            FleetError::Serve(e) => write!(f, "serving error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> Self {
        FleetError::Serve(e)
    }
}

/// One model's live replicas plus the metadata a rollout needs.
pub(crate) struct ReplicaGroup {
    /// The registry version currently deployed.
    pub(crate) deployed: ModelVersion,
    /// Live engines; empty after [`Router::kill_group`].
    pub(crate) replicas: Vec<Engine>,
    /// Final stats snapshots of replicas that no longer exist (killed
    /// groups, replaced deploys) so fleet totals never lose history.
    /// In-flight requests of a killed replica drain on drop, so these
    /// snapshots (taken just before the drop) can trail the true
    /// totals by those last in-flight answers.
    pub(crate) retired: Vec<EngineStats>,
}

/// Fleet-level per-tenant token bucket (engine buckets gate one
/// engine; this one spans every replica the tenant can reach).
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// Fleet-level per-tenant drops, tracked here because the engines
/// never saw these requests (fleet admission) or saw them only as
/// failover attempts (fleet shed would double-count inside engines).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RouterTenantDrops {
    /// Requests turned away by the fleet-level tenant quota.
    pub rejected: u64,
    /// Requests that found every ranked replica's queue full.
    pub shed: u64,
}

/// A multi-model fleet: replica groups, deterministic routing,
/// fleet-level admission, and chaos hooks.
pub struct Router {
    cfg: FleetConfig,
    groups: RwLock<BTreeMap<String, ReplicaGroup>>,
    admission: Mutex<BTreeMap<String, Bucket>>,
    tenant_drops: Mutex<BTreeMap<String, RouterTenantDrops>>,
    /// Requests turned away by the fleet-level quota (all tenants).
    rejected: AtomicU64,
    /// Requests shed because every ranked replica was full.
    shed: AtomicU64,
    /// Monotone submission counter feeding the rendezvous hash.
    seq: AtomicU64,
}

/// FNV-1a over the routing key. Stable across platforms and runs, so
/// a replayed submission sequence reproduces its placement exactly.
fn rendezvous_score(model_id: &str, replica: usize, seq: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in model_id.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    for b in (replica as u64).to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    for b in seq.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

fn lock_groups(
    groups: &RwLock<BTreeMap<String, ReplicaGroup>>,
) -> RwLockReadGuard<'_, BTreeMap<String, ReplicaGroup>> {
    match groups.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn lock_groups_mut(
    groups: &RwLock<BTreeMap<String, ReplicaGroup>>,
) -> RwLockWriteGuard<'_, BTreeMap<String, ReplicaGroup>> {
    match groups.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Router {
    /// An empty router; deploy models onto it with [`Router::deploy`].
    pub fn new(cfg: FleetConfig) -> Router {
        Router {
            cfg,
            groups: RwLock::new(BTreeMap::new()),
            admission: Mutex::new(BTreeMap::new()),
            tenant_drops: Mutex::new(BTreeMap::new()),
            rejected: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        }
    }

    /// The configuration this router was built with.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Deploys `version` as a fresh replica group (compiling the
    /// artifact once per replica). Replaces any existing group for the
    /// same model — including a killed one, which makes this the
    /// recovery path after [`Router::kill_group`] — retiring the old
    /// replicas' stats into the fleet totals first.
    pub fn deploy(&self, version: &ModelVersion) -> Result<(), FleetError> {
        let replicas = self.cfg.replicas_per_model.max(1);
        let mut engines = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            let compiled = version
                .artifact
                .compile()
                .map_err(|error| FleetError::Compile {
                    model_id: version.model_id.clone(),
                    error,
                })?;
            engines.push(Engine::start(compiled, self.cfg.engine.clone()));
        }
        let mut groups = lock_groups_mut(&self.groups);
        let retired = match groups.remove(&version.model_id) {
            Some(mut old) => {
                old.retired.extend(old.replicas.iter().map(Engine::stats));
                // Old engines drop here: queues drain, in-flight
                // requests still get answers before the new group
                // takes the name.
                old.retired
            }
            None => Vec::new(),
        };
        groups.insert(
            version.model_id.clone(),
            ReplicaGroup {
                deployed: version.clone(),
                replicas: engines,
                retired,
            },
        );
        Ok(())
    }

    /// Model ids with a (live or killed) replica group, sorted.
    pub fn model_ids(&self) -> Vec<String> {
        lock_groups(&self.groups).keys().cloned().collect()
    }

    /// The registry version a model's group is currently serving.
    pub fn deployed_version(&self, model_id: &str) -> Option<u32> {
        lock_groups(&self.groups)
            .get(model_id)
            .map(|g| g.deployed.version)
    }

    /// Routes one request to `model_id` and returns the engine ticket;
    /// call [`Ticket::wait`] (outside any router involvement) for the
    /// answer.
    pub fn submit(
        &self,
        model_id: &str,
        input: Tensor,
        opts: SubmitOptions,
    ) -> Result<Ticket, FleetError> {
        if let Some(tenant) = opts.tenant.as_deref() {
            if !self.admit(tenant) {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                lock(&self.tenant_drops)
                    .entry(tenant.to_string())
                    .or_default()
                    .rejected += 1;
                return Err(FleetError::Serve(ServeError::RateLimited {
                    tenant: tenant.to_string(),
                }));
            }
        }
        let groups = lock_groups(&self.groups);
        let group = groups
            .get(model_id)
            .ok_or_else(|| FleetError::UnknownModel {
                model_id: model_id.to_string(),
            })?;
        if group.replicas.is_empty() {
            return Err(FleetError::ModelDown {
                model_id: model_id.to_string(),
            });
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut order: Vec<usize> = (0..group.replicas.len()).collect();
        order.sort_by_key(|&r| std::cmp::Reverse(rendezvous_score(model_id, r, seq)));
        // Least-loaded refinement: between the two top-ranked replicas
        // take the shorter queue (rank order breaks ties), keeping
        // placement deterministic whenever queues are balanced.
        if order.len() >= 2 {
            let (a, b) = (order[0], order[1]);
            if group.replicas[b].queue_len() < group.replicas[a].queue_len() {
                order.swap(0, 1);
            }
        }
        let mut full = ServeError::QueueFull {
            capacity: self.cfg.engine.queue_capacity,
        };
        for r in order {
            match group.replicas[r].submit_with(input.clone(), opts.clone()) {
                Ok(ticket) => return Ok(ticket),
                Err(e @ ServeError::QueueFull { .. }) => full = e,
                Err(other) => return Err(FleetError::Serve(other)),
            }
        }
        // Every ranked replica was full: the fleet sheds the request.
        self.shed.fetch_add(1, Ordering::Relaxed);
        if let Some(tenant) = opts.tenant.as_deref() {
            lock(&self.tenant_drops)
                .entry(tenant.to_string())
                .or_default()
                .shed += 1;
        }
        Err(FleetError::Serve(full))
    }

    /// Convenience blocking call: [`Router::submit`] + [`Ticket::wait`].
    pub fn infer(&self, model_id: &str, input: Tensor) -> Result<Tensor, FleetError> {
        self.submit(model_id, input, SubmitOptions::default())?
            .wait()
            .map_err(FleetError::Serve)
    }

    /// Fleet-level token-bucket admission for `tenant`. Mirrors the
    /// engine-level bucket semantics: capacity `burst`, refill
    /// `rate_per_sec`, and `rate_per_sec = 0` makes the bucket a fixed
    /// budget (deterministic tests).
    fn admit(&self, tenant: &str) -> bool {
        let Some(quota) = self.cfg.tenant_quota else {
            return true;
        };
        let mut buckets = lock(&self.admission);
        let now = Instant::now();
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: quota.burst,
            refilled: now,
        });
        let dt = now.duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * quota.rate_per_sec).min(quota.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Kills `model_id`'s whole replica group: snapshots each
    /// replica's final stats into the fleet totals, then drops the
    /// engines (their queues drain; in-flight requests still get
    /// answers). Returns how many replicas died, or `None` for an
    /// unknown model. The group entry remains, so subsequent
    /// submissions fail fast with [`FleetError::ModelDown`] until
    /// [`Router::deploy`] restores it.
    pub fn kill_group(&self, model_id: &str) -> Option<usize> {
        let mut groups = lock_groups_mut(&self.groups);
        let group = groups.get_mut(model_id)?;
        let killed = group.replicas.len();
        group
            .retired
            .extend(group.replicas.iter().map(Engine::stats));
        group.replicas.clear();
        Some(killed)
    }

    /// Fires every pending fleet-level chaos entry that matches a
    /// deployed model: each `kill_replica_group(id)` in `plan` kills
    /// that group exactly once. Returns the killed ids (scan order).
    pub fn apply_chaos(&self, plan: &mut ChaosPlan) -> Vec<String> {
        let ids = self.model_ids();
        let mut killed = Vec::new();
        for id in ids {
            if plan.take_replica_group_kill(&id) && self.kill_group(&id).is_some() {
                killed.push(id);
            }
        }
        killed
    }

    /// Live replica count for a model (0 after a kill).
    pub fn replica_count(&self, model_id: &str) -> Option<usize> {
        lock_groups(&self.groups)
            .get(model_id)
            .map(|g| g.replicas.len())
    }

    /// Fleet-level drop totals: requests rejected by the fleet quota
    /// and requests shed with every replica full.
    pub fn drop_totals(&self) -> (u64, u64) {
        (
            self.rejected.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
        )
    }

    /// Per-tenant fleet-level drops.
    pub fn tenant_drops(&self) -> BTreeMap<String, RouterTenantDrops> {
        lock(&self.tenant_drops).clone()
    }

    /// Runs `f` with the model's replica group under the read lock
    /// (replicas may be swapped through it — [`Engine::swap_model`]
    /// is `&self` — but not added or removed).
    pub(crate) fn with_group<T>(
        &self,
        model_id: &str,
        f: impl FnOnce(&ReplicaGroup) -> T,
    ) -> Option<T> {
        lock_groups(&self.groups).get(model_id).map(f)
    }

    /// Runs `f` with the full group map under the read lock.
    pub(crate) fn with_groups<T>(&self, f: impl FnOnce(&BTreeMap<String, ReplicaGroup>) -> T) -> T {
        f(&lock_groups(&self.groups))
    }

    /// Commits rollout metadata: records `version` as the deployed
    /// registry version for `model_id`.
    pub(crate) fn commit_deployed(&self, model_id: &str, version: &ModelVersion) {
        if let Some(group) = lock_groups_mut(&self.groups).get_mut(model_id) {
            group.deployed = version.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_scores_are_stable_and_spread() {
        // Stability: same key, same score (the routing replay
        // guarantee relies on this).
        assert_eq!(
            rendezvous_score("alpha", 0, 7),
            rendezvous_score("alpha", 0, 7)
        );
        // Spread: over many sequence numbers a 3-replica group sees
        // every replica picked as primary.
        let mut seen = [false; 3];
        for seq in 0..64 {
            let top = (0..3)
                .max_by_key(|&r| rendezvous_score("alpha", r, seq))
                .unwrap_or(0);
            seen[top] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
