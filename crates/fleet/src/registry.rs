//! Versioned on-disk model registry.
//!
//! A registry directory holds deployable `.csqm` artifacts named
//! `<model_id>-v<version>.csqm` (e.g. `resnet8b-v3.csqm`). Scanning the
//! directory produces, per model, a *lineage*: every loadable version
//! in ascending order, each already past the container checksum, the
//! format-version gate, and the schema decode of
//! [`ModelArtifact::load`], plus a serving-contract check against the
//! model's earlier versions (all versions of one model must agree on
//! input shape and class count, or a rollout between them could never
//! succeed).
//!
//! Damage never aborts a scan. Files that are misnamed, corrupted,
//! written by a future format, or contract-drifted are recorded as
//! typed [`RegistryFault`]s and skipped, so one bad artifact cannot
//! take down a fleet restart: the remaining lineage keeps serving and
//! [`ModelRegistry::latest`] silently falls back to the newest version
//! that *did* load. The chaos variant
//! [`ModelRegistry::scan_with_chaos`] injects deterministic file
//! corruption before loading to prove exactly that recovery path.

use csq_core::fault::{flip_bit, ChaosPlan};
use csq_serve::{ArtifactError, ModelArtifact};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One loadable artifact version discovered by a registry scan.
#[derive(Debug, Clone)]
pub struct ModelVersion {
    /// Model identifier parsed from the file name.
    pub model_id: String,
    /// Version number parsed from the file name.
    pub version: u32,
    /// File the artifact was loaded from.
    pub path: PathBuf,
    /// The decoded artifact (checksum- and schema-validated).
    pub artifact: ModelArtifact,
}

/// A damaged registry entry, recorded instead of aborting the scan.
#[derive(Debug)]
pub enum RegistryFault {
    /// A `.csqm` file whose name is not `<model_id>-v<version>.csqm`.
    BadName {
        /// The offending file.
        path: PathBuf,
    },
    /// A well-named file that failed [`ModelArtifact::load`]
    /// (truncation, checksum mismatch, future format, schema drift).
    BadArtifact {
        /// The offending file.
        path: PathBuf,
        /// Why the load failed.
        error: ArtifactError,
    },
    /// A version whose serving contract (input shape, class count)
    /// disagrees with earlier versions of the same model.
    ContractDrift {
        /// The offending file.
        path: PathBuf,
        /// Contract of the model's earlier versions.
        expected: (Vec<usize>, usize),
        /// Contract this file declares.
        found: (Vec<usize>, usize),
    },
}

impl std::fmt::Display for RegistryFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryFault::BadName { path } => write!(
                f,
                "registry file {} is not named <model_id>-v<version>.csqm",
                path.display()
            ),
            RegistryFault::BadArtifact { path, error } => {
                write!(
                    f,
                    "registry file {} failed to load: {error}",
                    path.display()
                )
            }
            RegistryFault::ContractDrift {
                path,
                expected,
                found,
            } => write!(
                f,
                "registry file {} declares contract {found:?} but earlier versions of the \
                 same model serve {expected:?}",
                path.display()
            ),
        }
    }
}

/// Why a registry directory could not be scanned at all (as opposed to
/// individual entries failing, which lands in [`RegistryFault`]).
#[derive(Debug)]
pub enum RegistryError {
    /// The registry root could not be read.
    Io {
        /// The directory that failed.
        root: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io { root, error } => write!(
                f,
                "cannot scan registry directory {}: {error}",
                root.display()
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// The result of scanning a registry directory: per-model version
/// lineages plus the faults encountered along the way.
#[derive(Debug)]
pub struct ModelRegistry {
    root: PathBuf,
    /// model id → versions ascending.
    lineages: BTreeMap<String, Vec<ModelVersion>>,
    faults: Vec<RegistryFault>,
}

/// Parses `<model_id>-v<version>` from a `.csqm` file stem. The split
/// is on the *last* `-v`, so model ids may themselves contain dashes.
fn parse_stem(stem: &str) -> Option<(String, u32)> {
    let (id, ver) = stem.rsplit_once("-v")?;
    if id.is_empty() {
        return None;
    }
    let version: u32 = ver.parse().ok()?;
    Some((id.to_string(), version))
}

impl ModelRegistry {
    /// Scans `root` for versioned artifacts. Returns `Err` only when
    /// the directory itself cannot be read; per-file damage is
    /// recorded in [`faults`](Self::faults) instead.
    pub fn scan(root: &Path) -> Result<ModelRegistry, RegistryError> {
        Self::scan_with_chaos(root, &mut ChaosPlan::default())
    }

    /// [`scan`](Self::scan), with deterministic fault injection: every
    /// `corrupt_registry_entry(i, byte, bit)` in `chaos` flips one bit
    /// of the `i`-th `.csqm` file (in sorted file-name order — the
    /// scan order, so ordinals are stable) before it is loaded. The
    /// corrupted file then fails its checksum and must surface as a
    /// typed [`RegistryFault::BadArtifact`], not a crash.
    pub fn scan_with_chaos(
        root: &Path,
        chaos: &mut ChaosPlan,
    ) -> Result<ModelRegistry, RegistryError> {
        let io_err = |error| RegistryError::Io {
            root: root.to_path_buf(),
            error,
        };
        let mut paths: Vec<PathBuf> = std::fs::read_dir(root)
            .map_err(io_err)?
            .collect::<Result<Vec<_>, _>>()
            .map_err(io_err)?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "csqm"))
            .collect();
        // Sorted file names give the scan a stable order: chaos entry
        // ordinals, fault ordering, and lineage construction are all
        // reproducible across runs and platforms.
        paths.sort();

        while let Some((entry, byte_index, bit)) = chaos.take_registry_corruption() {
            if let Some(path) = paths.get(entry) {
                // Corruption that misses the file (offset beyond EOF)
                // is simply a no-op fault injection, not a scan error.
                let _ = flip_bit(path, byte_index, bit);
            }
        }

        let mut lineages: BTreeMap<String, Vec<ModelVersion>> = BTreeMap::new();
        let mut faults = Vec::new();
        for path in paths {
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            let Some((model_id, version)) = parse_stem(stem) else {
                faults.push(RegistryFault::BadName { path });
                continue;
            };
            let artifact = match ModelArtifact::load(&path) {
                Ok(a) => a,
                Err(error) => {
                    faults.push(RegistryFault::BadArtifact { path, error });
                    continue;
                }
            };
            let lineage = lineages.entry(model_id.clone()).or_default();
            if let Some(first) = lineage.first() {
                let expected = (
                    first.artifact.input_dims.clone(),
                    first.artifact.num_classes,
                );
                let found = (artifact.input_dims.clone(), artifact.num_classes);
                if expected != found {
                    faults.push(RegistryFault::ContractDrift {
                        path,
                        expected,
                        found,
                    });
                    continue;
                }
            }
            lineage.push(ModelVersion {
                model_id,
                version,
                path,
                artifact,
            });
        }
        for lineage in lineages.values_mut() {
            lineage.sort_by_key(|v| v.version);
        }
        lineages.retain(|_, lineage| !lineage.is_empty());
        Ok(ModelRegistry {
            root: root.to_path_buf(),
            lineages,
            faults,
        })
    }

    /// The scanned directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Model ids with at least one loadable version, sorted.
    pub fn model_ids(&self) -> Vec<&str> {
        self.lineages.keys().map(String::as_str).collect()
    }

    /// All loadable versions of `model_id`, ascending. Empty when the
    /// model is unknown.
    pub fn lineage(&self, model_id: &str) -> &[ModelVersion] {
        self.lineages
            .get(model_id)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The newest loadable version of `model_id`. When the newest file
    /// on disk is damaged this is automatically the newest *healthy*
    /// one — the registry's recovery guarantee.
    pub fn latest(&self, model_id: &str) -> Option<&ModelVersion> {
        self.lineage(model_id).last()
    }

    /// Every fault the scan encountered, in scan order.
    pub fn faults(&self) -> &[RegistryFault] {
        &self.faults
    }

    /// Total loadable versions across all models.
    pub fn version_count(&self) -> usize {
        self.lineages.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stem_parsing_accepts_dashed_ids_and_rejects_garbage() {
        assert_eq!(
            parse_stem("resnet-tiny-v12"),
            Some(("resnet-tiny".into(), 12))
        );
        assert_eq!(parse_stem("m-v0"), Some(("m".into(), 0)));
        assert_eq!(parse_stem("noversion"), None);
        assert_eq!(parse_stem("-v3"), None);
        assert_eq!(parse_stem("m-vx"), None);
    }
}
