//! Canaried, replica-by-replica version rollouts.
//!
//! [`rollout`] deploys a new artifact version to a live replica group
//! one engine at a time, with a bit-exactness canary between steps:
//! after each [`Engine::swap_model`], a pinned probe batch is pushed
//! through the freshly swapped replica (the full queue/batch/kernel
//! serving path, not a shortcut forward) and every answer must be
//! *bit-identical* to the expected outputs — by default the offline
//! compile of the same artifact, or expectations recorded at export
//! time via [`rollout_with_expected`]. The serving stack's
//! bit-determinism guarantee makes equality the only acceptable
//! outcome: any drift means the deployed bits are not the bits that
//! were validated, and the rollout must not proceed.
//!
//! On a failed canary — or a contract refusal
//! ([`ServeError::SwapIncompatible`]) from any replica — every replica
//! already moved is swapped back to the incumbent version
//! automatically, and the report says so; traffic never sees a
//! half-validated fleet. Requests keep flowing throughout: swaps
//! happen between batches, and un-swapped replicas serve the old
//! version while the canary runs.
//!
//! [`Engine::swap_model`]: csq_serve::Engine::swap_model
//! [`ServeError::SwapIncompatible`]: csq_serve::ServeError::SwapIncompatible

use crate::registry::ModelVersion;
use crate::router::{FleetError, Router};
use csq_serve::ServeError;
use csq_tensor::par::ScratchPool;
use csq_tensor::Tensor;

/// How a rollout ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RolloutOutcome {
    /// Every replica serves the new version; the canary passed on each.
    Completed,
    /// The rollout was aborted and every swapped replica restored to
    /// the incumbent version.
    RolledBack {
        /// What aborted it (canary mismatch detail or swap refusal).
        reason: String,
    },
}

/// What a rollout did, step by step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloutReport {
    /// The model rolled out.
    pub model_id: String,
    /// Registry version the group served before.
    pub from_version: u32,
    /// Registry version the rollout tried to deploy.
    pub to_version: u32,
    /// Replicas that were swapped forward (on `Completed`, all of
    /// them; on `RolledBack`, how many had moved before the abort —
    /// all restored).
    pub replicas_swapped: usize,
    /// Probe samples checked per swapped replica.
    pub probes_per_replica: usize,
    /// The outcome.
    pub outcome: RolloutOutcome,
}

/// Rolls `target` out to `model_id`'s replica group, canarying each
/// swap against the offline compile of `target` on `probe` (shape
/// `[S, input_dims...]`, `S ≥ 1`).
///
/// # Errors
///
/// [`FleetError::UnknownModel`] / [`FleetError::ModelDown`] when there
/// is no live group, [`FleetError::Compile`] when `target` cannot
/// compile, [`FleetError::Serve`] on a malformed probe. A failed
/// canary or refused swap is *not* an `Err`: it returns `Ok` with
/// [`RolloutOutcome::RolledBack`], because the fleet was left healthy
/// on the incumbent version.
pub fn rollout(
    router: &Router,
    model_id: &str,
    target: &ModelVersion,
    probe: &Tensor,
) -> Result<RolloutReport, FleetError> {
    let compile_err = |error| FleetError::Compile {
        model_id: model_id.to_string(),
        error,
    };
    let reference = target.artifact.compile().map_err(compile_err)?;
    let scratch: ScratchPool<u8> = ScratchPool::new();
    let expected = reference
        .forward_batch(probe, &scratch)
        .map_err(FleetError::Serve)?;
    rollout_with_expected(router, model_id, target, probe, &expected)
}

/// [`rollout`] with externally pinned expectations: `expected` is the
/// `[S, num_classes]` logits the probe batch must reproduce bit-for-
/// bit on every swapped replica (e.g. outputs recorded when the
/// artifact was exported). This is the hook chaos tests use to force
/// a canary failure, and deployers use to catch a serving stack that
/// disagrees with the training side.
pub fn rollout_with_expected(
    router: &Router,
    model_id: &str,
    target: &ModelVersion,
    probe: &Tensor,
    expected: &Tensor,
) -> Result<RolloutReport, FleetError> {
    let compile_err = |error| FleetError::Compile {
        model_id: model_id.to_string(),
        error,
    };
    let (from_version, replica_count) = router
        .with_group(model_id, |g| (g.deployed.version, g.replicas.len()))
        .ok_or_else(|| FleetError::UnknownModel {
            model_id: model_id.to_string(),
        })?;
    if replica_count == 0 {
        return Err(FleetError::ModelDown {
            model_id: model_id.to_string(),
        });
    }
    let probes = probe_samples(probe, &target.artifact.input_dims)?;
    if expected.dims().first() != Some(&probes.len()) {
        return Err(FleetError::Serve(ServeError::BadInput {
            expected: vec![probes.len(), target.artifact.num_classes],
            actual: expected.dims().to_vec(),
        }));
    }
    let mut report = RolloutReport {
        model_id: model_id.to_string(),
        from_version,
        to_version: target.version,
        replicas_swapped: 0,
        probes_per_replica: probes.len(),
        outcome: RolloutOutcome::Completed,
    };

    for replica in 0..replica_count {
        // Compile outside the group lock; each engine needs its own
        // executor instance.
        let compiled = target.artifact.compile().map_err(compile_err)?;
        let swap: Option<Result<u64, ServeError>> =
            router.with_group(model_id, |g| g.replicas[replica].swap_model(compiled));
        match swap {
            Some(Ok(_)) => {}
            Some(Err(e)) => {
                // SwapIncompatible (or any other refusal): the replica
                // kept the old model; restore the ones already moved.
                roll_back(router, model_id, report.replicas_swapped);
                report.outcome = RolloutOutcome::RolledBack {
                    reason: format!("replica {replica} refused the swap: {e}"),
                };
                return Ok(report);
            }
            None => {
                return Err(FleetError::UnknownModel {
                    model_id: model_id.to_string(),
                })
            }
        }
        report.replicas_swapped += 1;

        if let Some(mismatch) = canary(router, model_id, replica, &probes, expected) {
            roll_back(router, model_id, report.replicas_swapped);
            report.outcome = RolloutOutcome::RolledBack { reason: mismatch };
            return Ok(report);
        }
    }
    router.commit_deployed(model_id, target);
    Ok(report)
}

/// Splits the pinned probe batch `[S, input_dims...]` into per-sample
/// tensors an engine accepts.
fn probe_samples(probe: &Tensor, input_dims: &[usize]) -> Result<Vec<Tensor>, FleetError> {
    let dims = probe.dims();
    let ok = dims.len() == input_dims.len() + 1 && dims[1..] == input_dims[..] && dims[0] > 0;
    if !ok {
        return Err(FleetError::Serve(ServeError::BadInput {
            expected: input_dims.to_vec(),
            actual: dims.to_vec(),
        }));
    }
    let per = probe.numel() / dims[0];
    Ok(probe
        .data()
        .chunks_exact(per)
        .map(|row| Tensor::from_vec(row.to_vec(), input_dims))
        .collect())
}

/// Pushes every probe through the swapped replica's full serving path
/// and bit-compares against the expected logits. Returns a mismatch
/// description, or `None` when all probes reproduce exactly.
fn canary(
    router: &Router,
    model_id: &str,
    replica: usize,
    probes: &[Tensor],
    expected: &Tensor,
) -> Option<String> {
    let classes = expected.numel() / probes.len().max(1);
    for (s, sample) in probes.iter().enumerate() {
        let answer = router.with_group(model_id, |g| g.replicas[replica].infer(sample.clone()))?;
        let want = &expected.data()[s * classes..(s + 1) * classes];
        match answer {
            Ok(got) if got.data() == want => {}
            Ok(got) => {
                return Some(format!(
                "canary mismatch on replica {replica}, probe {s}: served {:?}, expected {want:?}",
                got.data()
            ))
            }
            Err(e) => return Some(format!("canary probe {s} failed on replica {replica}: {e}")),
        }
    }
    None
}

/// Best-effort restore of the incumbent version onto the first
/// `swapped` replicas (the ones the aborted rollout had moved).
fn roll_back(router: &Router, model_id: &str, swapped: usize) {
    for replica in 0..swapped {
        let incumbent = router.with_group(model_id, |g| g.deployed.artifact.clone());
        let Some(artifact) = incumbent else { return };
        let Ok(compiled) = artifact.compile() else {
            // The incumbent compiled when it was deployed; if it no
            // longer does there is nothing safer to restore to.
            return;
        };
        router.with_group(model_id, |g| {
            let _ = g.replicas[replica].swap_model(compiled);
        });
    }
}
