//! Fleet-wide stats rollups.
//!
//! Every replica engine keeps its own [`EngineStats`] with geometric
//! latency histograms (`csq-obs`). This module folds them into one
//! fleet view without losing distribution shape: counters add,
//! histograms merge bucket-wise ([`HistogramSnapshot::merge`]), and
//! percentiles are re-derived from the *merged* histogram — never
//! averaged across replicas, which would be statistically meaningless.
//! The merged percentile carries the same guarantee as a single
//! replica's: an upper bound within one geometric bucket (a factor of
//! 2) of the pooled-sample exact percentile.
//!
//! Rollups come in three scopes: per model (live replicas plus the
//! retired stats of killed/replaced replicas, so totals survive chaos
//! and redeploys), per tenant across every model (engine-observed
//! traffic plus the router's own fleet-level quota rejections and
//! shed counts, which no engine ever saw), and the router itself.
//! [`FleetStats::to_metrics_snapshot`] re-homes everything under
//! `fleet.model.<id>`, `fleet.tenant.<name>`, and `fleet.router` via
//! [`MetricsSnapshot::prefixed`], ready for JSON or Prometheus text
//! exposition alongside the rest of the workspace's telemetry.

use crate::router::{Router, RouterTenantDrops};
use csq_obs::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
use csq_serve::{EngineStats, TenantStats};
use std::collections::BTreeMap;

/// One model's merged serving stats.
#[derive(Debug, Clone)]
pub struct ModelStats {
    /// Registry version the group currently serves.
    pub registry_version: u32,
    /// Live replicas (0 after a group kill).
    pub live_replicas: usize,
    /// Replica stats retired into the totals (killed or replaced).
    pub retired_replicas: usize,
    /// Engine stats merged across live and retired replicas.
    pub merged: EngineStats,
}

/// Router-level totals (requests the engines never saw).
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Requests rejected by the fleet-level tenant quota.
    pub rejected: u64,
    /// Requests shed with every ranked replica's queue full.
    pub shed: u64,
    /// The same, by tenant.
    pub tenants: BTreeMap<String, RouterTenantDrops>,
}

/// A point-in-time fleet rollup; build one with [`FleetStats::collect`].
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Per-model rollups, keyed by model id.
    pub models: BTreeMap<String, ModelStats>,
    /// Per-tenant rollups merged across every model's replicas.
    pub tenants: BTreeMap<String, TenantStats>,
    /// Fleet-level admission and shed totals.
    pub router: RouterStats,
}

/// Merges engine stats across replicas: counters add, latency
/// histograms merge, percentiles re-derive from the merged histogram.
/// `model_version` is the maximum (replicas mid-rollout disagree;
/// the furthest-along one defines the group).
pub fn merge_engine_stats(stats: &[EngineStats]) -> EngineStats {
    let mut latency = HistogramSnapshot::empty(1);
    let mut batch_hist: Vec<u64> = Vec::new();
    let mut merged = EngineStats {
        submitted: 0,
        completed: 0,
        shed: 0,
        rejected: 0,
        expired: 0,
        failed: 0,
        batches: 0,
        queue_depth: 0,
        worker_restarts: 0,
        panics_contained: 0,
        swaps: 0,
        model_version: 0,
        avg_batch: 0.0,
        batch_hist: Vec::new(),
        p50_us: 0,
        p95_us: 0,
        p99_us: 0,
        latency_bounds_us: Vec::new(),
        latency_counts: Vec::new(),
        latency_sum_us: 0,
        tenants: BTreeMap::new(),
    };
    for s in stats {
        merged.submitted += s.submitted;
        merged.completed += s.completed;
        merged.shed += s.shed;
        merged.rejected += s.rejected;
        merged.expired += s.expired;
        merged.failed += s.failed;
        merged.batches += s.batches;
        merged.queue_depth += s.queue_depth;
        merged.worker_restarts += s.worker_restarts;
        merged.panics_contained += s.panics_contained;
        merged.swaps += s.swaps;
        merged.model_version = merged.model_version.max(s.model_version);
        if s.batch_hist.len() > batch_hist.len() {
            batch_hist.resize(s.batch_hist.len(), 0);
        }
        for (slot, &c) in batch_hist.iter_mut().zip(&s.batch_hist) {
            *slot += c;
        }
        latency.merge(&s.latency_histogram());
        for (tenant, t) in &s.tenants {
            merge_tenant_into(&mut merged.tenants, tenant, t);
        }
    }
    merged.avg_batch = if merged.batches > 0 {
        merged.completed as f32 / merged.batches as f32
    } else {
        0.0
    };
    merged.batch_hist = batch_hist;
    merged.p50_us = latency.percentile(0.50);
    merged.p95_us = latency.percentile(0.95);
    merged.p99_us = latency.percentile(0.99);
    merged.latency_bounds_us = latency.bounds();
    merged.latency_sum_us = latency.sum;
    merged.latency_counts = latency.counts;
    merged
}

/// Folds one replica's tenant slice into a rollup map (counters add,
/// histograms merge, percentiles re-derive).
fn merge_tenant_into(rollup: &mut BTreeMap<String, TenantStats>, tenant: &str, t: &TenantStats) {
    let entry = rollup
        .entry(tenant.to_string())
        .or_insert_with(|| TenantStats {
            submitted: 0,
            completed: 0,
            shed: 0,
            rejected: 0,
            expired: 0,
            failed: 0,
            p50_us: 0,
            p95_us: 0,
            p99_us: 0,
            latency: HistogramSnapshot::empty(t.latency.n_buckets()),
        });
    entry.submitted += t.submitted;
    entry.completed += t.completed;
    entry.shed += t.shed;
    entry.rejected += t.rejected;
    entry.expired += t.expired;
    entry.failed += t.failed;
    entry.latency.merge(&t.latency);
    entry.p50_us = entry.latency.percentile(0.50);
    entry.p95_us = entry.latency.percentile(0.95);
    entry.p99_us = entry.latency.percentile(0.99);
}

impl FleetStats {
    /// Snapshots the whole fleet: every live replica's stats, every
    /// retired replica's final stats, and the router's own counters.
    pub fn collect(router: &Router) -> FleetStats {
        let mut models = BTreeMap::new();
        let mut tenants: BTreeMap<String, TenantStats> = BTreeMap::new();
        router.with_groups(|groups| {
            for (id, group) in groups {
                let mut all: Vec<EngineStats> = group
                    .replicas
                    .iter()
                    .map(csq_serve::Engine::stats)
                    .collect();
                all.extend(group.retired.iter().cloned());
                let merged = merge_engine_stats(&all);
                for (tenant, t) in &merged.tenants {
                    merge_tenant_into(&mut tenants, tenant, t);
                }
                models.insert(
                    id.clone(),
                    ModelStats {
                        registry_version: group.deployed.version,
                        live_replicas: group.replicas.len(),
                        retired_replicas: group.retired.len(),
                        merged,
                    },
                );
            }
        });
        let (rejected, shed) = router.drop_totals();
        FleetStats {
            models,
            tenants,
            router: RouterStats {
                rejected,
                shed,
                tenants: router.tenant_drops(),
            },
        }
    }

    /// Renders the rollup as one merged `csq-obs` snapshot:
    /// `fleet.model.<id>.*` (full [`EngineStats`] exposition plus
    /// `live_replicas` / `registry_version` gauges),
    /// `fleet.tenant.<name>.*` cross-model rollups, and
    /// `fleet.router.*` totals.
    pub fn to_metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (id, m) in &self.models {
            snap.merge(&m.merged.to_metrics_snapshot(&format!("fleet.model.{id}")));
        }
        let registry = MetricsRegistry::new();
        for (id, m) in &self.models {
            registry
                .gauge(&format!("fleet.model.{id}.live_replicas"))
                .set(m.live_replicas as i64);
            registry
                .gauge(&format!("fleet.model.{id}.registry_version"))
                .set(i64::from(m.registry_version));
        }
        for (tenant, t) in &self.tenants {
            for (name, value) in [
                ("submitted", t.submitted),
                ("completed", t.completed),
                ("shed", t.shed),
                ("rejected", t.rejected),
                ("expired", t.expired),
                ("failed", t.failed),
            ] {
                registry
                    .counter(&format!("fleet.tenant.{tenant}.{name}"))
                    .add(value);
            }
        }
        registry
            .counter("fleet.router.rejected")
            .add(self.router.rejected);
        registry.counter("fleet.router.shed").add(self.router.shed);
        for (tenant, drops) in &self.router.tenants {
            registry
                .counter(&format!("fleet.router.tenant.{tenant}.rejected"))
                .add(drops.rejected);
            registry
                .counter(&format!("fleet.router.tenant.{tenant}.shed"))
                .add(drops.shed);
        }
        snap.merge(&registry.snapshot());
        for (tenant, t) in &self.tenants {
            snap.hists.insert(
                format!("fleet.tenant.{tenant}.latency_us"),
                t.latency.clone(),
            );
        }
        snap
    }

    /// Pretty-printed JSON of the merged snapshot.
    pub fn to_json(&self) -> String {
        self.to_metrics_snapshot().to_json()
    }

    /// Prometheus text exposition of the merged snapshot.
    pub fn to_prometheus(&self) -> String {
        self.to_metrics_snapshot().to_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(completed: u64, bucket: usize, n: u64) -> EngineStats {
        let mut latency = HistogramSnapshot::empty(8);
        latency.counts[bucket] = n;
        latency.sum = n * (1 << bucket);
        EngineStats {
            submitted: completed,
            completed,
            shed: 1,
            rejected: 0,
            expired: 0,
            failed: 0,
            batches: completed.max(1),
            queue_depth: 2,
            worker_restarts: 0,
            panics_contained: 0,
            swaps: 0,
            model_version: 1,
            avg_batch: 1.0,
            batch_hist: vec![0, completed],
            p50_us: 0,
            p95_us: 0,
            p99_us: 0,
            latency_bounds_us: latency.bounds(),
            latency_counts: latency.counts.clone(),
            latency_sum_us: latency.sum,
            tenants: BTreeMap::new(),
        }
    }

    #[test]
    fn merged_percentiles_come_from_the_pooled_histogram() {
        // Replica A: 90 fast requests (bucket 1 ≤ 2µs). Replica B: 10
        // slow ones (bucket 6 ≤ 64µs). Per-replica p99s are 2µs and
        // 64µs; the fleet p99 must reflect the pooled tail, not an
        // average.
        let merged = merge_engine_stats(&[stats_with(90, 1, 90), stats_with(10, 6, 10)]);
        assert_eq!(merged.completed, 100);
        assert_eq!(merged.shed, 2);
        assert_eq!(merged.p50_us, 2);
        assert_eq!(merged.p99_us, 64);
        assert_eq!(merged.batch_hist, vec![0, 100]);
        assert_eq!(merged.queue_depth, 4);
    }

    #[test]
    fn merging_nothing_is_all_zeros() {
        let merged = merge_engine_stats(&[]);
        assert_eq!(merged.submitted, 0);
        assert_eq!(merged.p99_us, 0);
        assert!(merged.tenants.is_empty());
    }
}
