//! Loader for the real CIFAR-10 dataset (binary version).
//!
//! The reduced-scale benchmarks use the synthetic generator, but the
//! paper's experiments run on CIFAR-10 proper; this loader parses the
//! standard binary distribution (`cifar-10-batches-bin`: five training
//! files and one test file of 10 000 records each, one record being a
//! label byte followed by 3 072 channel-major pixel bytes) so paper-scale
//! runs can use the genuine data when it is available on disk.
//!
//! Pixels are normalized with the conventional per-channel CIFAR-10
//! statistics.

use crate::synth::{Dataset, Split, SyntheticSpec};
use csq_tensor::Tensor;

/// Bytes per record: 1 label + 3×32×32 pixels.
const RECORD_BYTES: usize = 1 + 3 * 32 * 32;

/// Conventional CIFAR-10 per-channel normalization statistics.
const MEAN: [f32; 3] = [0.4914, 0.4822, 0.4465];
const STD: [f32; 3] = [0.2470, 0.2435, 0.2616];

/// Error loading CIFAR-10 from disk.
#[derive(Debug)]
pub enum CifarError {
    /// An expected file is missing or unreadable.
    Io(std::io::Error),
    /// A file's size is not a whole number of records.
    Malformed {
        /// The offending file.
        file: String,
        /// Its size in bytes.
        len: usize,
    },
    /// A record's label byte is outside 0..=9.
    BadLabel {
        /// The offending file.
        file: String,
        /// Record index within the file.
        record: usize,
        /// The label byte found.
        label: u8,
    },
}

impl std::fmt::Display for CifarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CifarError::Io(e) => write!(f, "i/o error reading CIFAR-10: {e}"),
            CifarError::Malformed { file, len } => {
                write!(f, "{file}: {len} bytes is not a whole number of records")
            }
            CifarError::BadLabel {
                file,
                record,
                label,
            } => write!(f, "{file}: record {record} has invalid label {label}"),
        }
    }
}

impl std::error::Error for CifarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CifarError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CifarError> for std::io::Error {
    fn from(e: CifarError) -> Self {
        match e {
            CifarError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other),
        }
    }
}

impl From<std::io::Error> for CifarError {
    fn from(e: std::io::Error) -> Self {
        CifarError::Io(e)
    }
}

fn parse_file(path: &std::path::Path) -> Result<(Vec<f32>, Vec<usize>), CifarError> {
    let bytes = std::fs::read(path)?;
    let name = path.display().to_string();
    if bytes.len() % RECORD_BYTES != 0 {
        return Err(CifarError::Malformed {
            file: name,
            len: bytes.len(),
        });
    }
    let n = bytes.len() / RECORD_BYTES;
    let mut pixels = Vec::with_capacity(n * 3072);
    let mut labels = Vec::with_capacity(n);
    for r in 0..n {
        let rec = &bytes[r * RECORD_BYTES..(r + 1) * RECORD_BYTES];
        let label = rec[0];
        if label > 9 {
            return Err(CifarError::BadLabel {
                file: name,
                record: r,
                label,
            });
        }
        labels.push(label as usize);
        // Channel-major already (R plane, G plane, B plane) — matches our
        // NCHW layout directly.
        for c in 0..3 {
            let plane = &rec[1 + c * 1024..1 + (c + 1) * 1024];
            pixels.extend(
                plane
                    .iter()
                    .map(|&b| (b as f32 / 255.0 - MEAN[c]) / STD[c]),
            );
        }
    }
    Ok((pixels, labels))
}

/// Loads the binary CIFAR-10 distribution from `dir`
/// (`data_batch_1.bin` … `data_batch_5.bin` + `test_batch.bin`).
///
/// # Errors
///
/// [`CifarError`] on missing files, truncated records or invalid labels.
pub fn load_cifar10(dir: &std::path::Path) -> Result<Dataset, CifarError> {
    let mut train_pixels = Vec::new();
    let mut train_labels = Vec::new();
    for i in 1..=5 {
        let (p, l) = parse_file(&dir.join(format!("data_batch_{i}.bin")))?;
        train_pixels.extend(p);
        train_labels.extend(l);
    }
    let (test_pixels, test_labels) = parse_file(&dir.join("test_batch.bin"))?;

    let n_train = train_labels.len();
    let n_test = test_labels.len();
    Ok(Dataset {
        train: Split {
            images: Tensor::from_vec(train_pixels, &[n_train, 3, 32, 32]),
            labels: train_labels,
        },
        test: Split {
            images: Tensor::from_vec(test_pixels, &[n_test, 3, 32, 32]),
            labels: test_labels,
        },
        spec: SyntheticSpec {
            num_classes: 10,
            image_size: 32,
            channels: 3,
            train_per_class: n_train / 10,
            test_per_class: n_test / 10,
            noise: 0.0,
            jitter: 0,
            seed: 0,
        },
    })
}

/// Loads CIFAR-10 from `dir` when present, otherwise falls back to the
/// synthetic stand-in with `fallback` — the pattern the examples use so
/// they work both with and without the real data.
pub fn load_cifar10_or_synthetic(dir: &std::path::Path, fallback: &SyntheticSpec) -> Dataset {
    match load_cifar10(dir) {
        Ok(d) => d,
        Err(_) => Dataset::synthetic(fallback),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Writes a miniature but format-correct batch file.
    fn write_fixture(dir: &std::path::Path, name: &str, records: usize, label_of: impl Fn(usize) -> u8) {
        let mut bytes = Vec::with_capacity(records * RECORD_BYTES);
        for r in 0..records {
            bytes.push(label_of(r));
            for i in 0..3072 {
                bytes.push(((r * 31 + i * 7) % 256) as u8);
            }
        }
        std::fs::write(dir.join(name), bytes).unwrap();
    }

    fn fixture_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("csq_cifar_fixture_{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_wellformed_fixture() {
        let dir = fixture_dir("ok");
        for i in 1..=5 {
            write_fixture(&dir, &format!("data_batch_{i}.bin"), 4, |r| (r % 10) as u8);
        }
        write_fixture(&dir, "test_batch.bin", 2, |r| (r % 10) as u8);
        let d = load_cifar10(&dir).unwrap();
        assert_eq!(d.train.images.dims(), &[20, 3, 32, 32]);
        assert_eq!(d.test.images.dims(), &[2, 3, 32, 32]);
        assert_eq!(d.train.labels.len(), 20);
        assert!(d.train.images.all_finite());
        // Normalization: raw bytes span [0, 255] so normalized values
        // stay within a few standard deviations.
        assert!(d.train.images.max_abs() < 4.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let dir = fixture_dir("trunc");
        for i in 1..=5 {
            write_fixture(&dir, &format!("data_batch_{i}.bin"), 2, |_| 0);
        }
        write_fixture(&dir, "test_batch.bin", 1, |_| 0);
        // Truncate one file by a byte.
        let path = dir.join("data_batch_3.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.pop();
        std::fs::write(&path, bytes).unwrap();
        let err = load_cifar10(&dir).unwrap_err();
        assert!(matches!(err, CifarError::Malformed { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_label() {
        let dir = fixture_dir("label");
        for i in 1..=5 {
            write_fixture(&dir, &format!("data_batch_{i}.bin"), 2, |_| 0);
        }
        write_fixture(&dir, "test_batch.bin", 2, |r| if r == 1 { 11 } else { 0 });
        let err = load_cifar10(&dir).unwrap_err();
        match err {
            CifarError::BadLabel { record, label, .. } => {
                assert_eq!(record, 1);
                assert_eq!(label, 11);
            }
            other => panic!("wrong error: {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dir_errors_and_fallback_works() {
        let missing = std::path::Path::new("/definitely/not/here");
        assert!(matches!(load_cifar10(missing), Err(CifarError::Io(_))));
        let spec = SyntheticSpec::cifar_like(0).with_samples(2, 1);
        let d = load_cifar10_or_synthetic(missing, &spec);
        assert_eq!(d.train.len(), 20);
    }

    #[test]
    fn channel_layout_is_nchw() {
        let dir = fixture_dir("layout");
        // One record whose R plane is all 255 and G/B planes all 0.
        let mut bytes = vec![3u8]; // label
        bytes.extend(std::iter::repeat(255u8).take(1024)); // R
        bytes.extend(std::iter::repeat(0u8).take(2048)); // G, B
        for i in 1..=5 {
            std::fs::write(dir.join(format!("data_batch_{i}.bin")), &bytes).unwrap();
        }
        std::fs::write(dir.join("test_batch.bin"), &bytes).unwrap();
        let d = load_cifar10(&dir).unwrap();
        let img = &d.test.images;
        // R channel uniformly the normalized max, G below its mean.
        let r_val = img.at(&[0, 0, 16, 16]);
        let g_val = img.at(&[0, 1, 16, 16]);
        assert!(r_val > 1.5, "R should be high, got {r_val}");
        assert!(g_val < -1.5, "G should be low, got {g_val}");
        assert_eq!(d.test.labels[0], 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
