//! Procedural class-template image generator.

use csq_tensor::Tensor;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of a synthetic classification dataset.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Square image extent.
    pub image_size: usize,
    /// Image channels.
    pub channels: usize,
    /// Training samples per class.
    pub train_per_class: usize,
    /// Test samples per class.
    pub test_per_class: usize,
    /// Additive Gaussian pixel-noise standard deviation.
    pub noise: f32,
    /// Maximum absolute translation jitter in pixels.
    pub jitter: usize,
    /// Master seed; templates and samples derive from it.
    pub seed: u64,
}

impl SyntheticSpec {
    /// CIFAR-10 stand-in: 10 classes, 3×16×16, moderate noise.
    pub fn cifar_like(seed: u64) -> Self {
        SyntheticSpec {
            num_classes: 10,
            image_size: 16,
            channels: 3,
            train_per_class: 48,
            test_per_class: 16,
            noise: 0.35,
            jitter: 2,
            seed,
        }
    }

    /// ImageNet stand-in: more classes, slightly larger images.
    pub fn imagenet_like(seed: u64) -> Self {
        SyntheticSpec {
            num_classes: 40,
            image_size: 20,
            channels: 3,
            train_per_class: 20,
            test_per_class: 6,
            noise: 0.35,
            jitter: 2,
            seed,
        }
    }

    /// Overrides the per-class sample counts (builder style).
    pub fn with_samples(mut self, train_per_class: usize, test_per_class: usize) -> Self {
        self.train_per_class = train_per_class;
        self.test_per_class = test_per_class;
        self
    }

    /// Overrides the noise level (builder style).
    pub fn with_noise(mut self, noise: f32) -> Self {
        self.noise = noise;
        self
    }

    /// Overrides class count (builder style).
    pub fn with_classes(mut self, num_classes: usize) -> Self {
        self.num_classes = num_classes;
        self
    }

    /// Overrides image size (builder style).
    pub fn with_image_size(mut self, image_size: usize) -> Self {
        self.image_size = image_size;
        self
    }
}

/// One split of a dataset: stacked images and their labels.
#[derive(Debug, Clone)]
pub struct Split {
    /// Images, `[N, C, H, W]`.
    pub images: Tensor,
    /// Class index per image.
    pub labels: Vec<usize>,
}

impl Split {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the split is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// A train/test dataset pair.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training split.
    pub train: Split,
    /// Held-out evaluation split.
    pub test: Split,
    /// The spec that generated this dataset.
    pub spec: SyntheticSpec,
}

/// A class template: blob centers/colors plus a grating.
struct Template {
    blobs: Vec<(f32, f32, f32, [f32; 4])>, // (cy, cx, sigma, per-channel amplitude)
    grating_freq: f32,
    grating_angle: f32,
    grating_amp: [f32; 4],
}

fn make_template(class: usize, channels: usize, size: usize, rng: &mut ChaCha8Rng) -> Template {
    assert!(channels <= 4, "generator supports up to 4 channels");
    let n_blobs = 2 + class % 3;
    let mut blobs = Vec::new();
    for _ in 0..n_blobs {
        let cy = rng.gen_range(0.2..0.8) * size as f32;
        let cx = rng.gen_range(0.2..0.8) * size as f32;
        let sigma = rng.gen_range(0.08..0.22) * size as f32;
        let mut amp = [0.0f32; 4];
        for a in amp.iter_mut().take(channels) {
            *a = rng.gen_range(-1.0..1.0);
        }
        blobs.push((cy, cx, sigma, amp));
    }
    let mut grating_amp = [0.0f32; 4];
    for a in grating_amp.iter_mut().take(channels) {
        *a = rng.gen_range(-0.6..0.6);
    }
    Template {
        blobs,
        grating_freq: rng.gen_range(0.4..1.6),
        grating_angle: rng.gen_range(0.0..std::f32::consts::PI),
        grating_amp,
    }
}

/// Renders one sample of `template` with translation `(dy, dx)` and
/// amplitude scale `gain` into `out` (len = channels·size²).
fn render(
    template: &Template,
    channels: usize,
    size: usize,
    dy: f32,
    dx: f32,
    gain: f32,
    out: &mut [f32],
) {
    let (sin_a, cos_a) = template.grating_angle.sin_cos();
    for c in 0..channels {
        for y in 0..size {
            for x in 0..size {
                let fy = y as f32 - dy;
                let fx = x as f32 - dx;
                let mut v = 0.0f32;
                for (cy, cx, sigma, amp) in &template.blobs {
                    let d2 = (fy - cy) * (fy - cy) + (fx - cx) * (fx - cx);
                    v += amp[c] * (-d2 / (2.0 * sigma * sigma)).exp();
                }
                let phase = template.grating_freq * (fy * cos_a + fx * sin_a);
                v += template.grating_amp[c] * phase.sin();
                out[c * size * size + y * size + x] = gain * v;
            }
        }
    }
}

impl Dataset {
    /// Generates a dataset from a spec. Deterministic: the same spec
    /// (including seed) always yields identical tensors.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate spec (zero classes/size/channels or more
    /// than 4 channels).
    pub fn synthetic(spec: &SyntheticSpec) -> Dataset {
        assert!(spec.num_classes > 0, "need at least one class");
        assert!(spec.image_size > 0, "image size must be positive");
        assert!(
            (1..=4).contains(&spec.channels),
            "generator supports 1..=4 channels"
        );
        let mut template_rng = ChaCha8Rng::seed_from_u64(spec.seed.wrapping_mul(0x9E37_79B9));
        let templates: Vec<Template> = (0..spec.num_classes)
            .map(|c| make_template(c, spec.channels, spec.image_size, &mut template_rng))
            .collect();

        let mut sample_rng = ChaCha8Rng::seed_from_u64(spec.seed.wrapping_add(1));
        let train = Self::render_split(spec, &templates, spec.train_per_class, &mut sample_rng);
        let test = Self::render_split(spec, &templates, spec.test_per_class, &mut sample_rng);
        Dataset {
            train,
            test,
            spec: *spec,
        }
    }

    fn render_split(
        spec: &SyntheticSpec,
        templates: &[Template],
        per_class: usize,
        rng: &mut ChaCha8Rng,
    ) -> Split {
        let n = per_class * spec.num_classes;
        let px = spec.channels * spec.image_size * spec.image_size;
        let mut images = vec![0.0f32; n * px];
        let mut labels = Vec::with_capacity(n);
        let j = spec.jitter as f32;
        for i in 0..n {
            let class = i % spec.num_classes;
            labels.push(class);
            let dy = rng.gen_range(-j..=j);
            let dx = rng.gen_range(-j..=j);
            let gain = rng.gen_range(0.8..1.2);
            let out = &mut images[i * px..(i + 1) * px];
            render(
                &templates[class],
                spec.channels,
                spec.image_size,
                dy,
                dx,
                gain,
                out,
            );
            for v in out.iter_mut() {
                // Box–Muller noise.
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                *v += spec.noise * z;
            }
        }
        Split {
            images: Tensor::from_vec(
                images,
                &[n, spec.channels, spec.image_size, spec.image_size],
            ),
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let spec = SyntheticSpec::cifar_like(3).with_samples(4, 2);
        let a = Dataset::synthetic(&spec);
        let b = Dataset::synthetic(&spec);
        assert!(a.train.images.approx_eq(&b.train.images, 0.0));
        assert_eq!(a.train.labels, b.train.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::synthetic(&SyntheticSpec::cifar_like(0).with_samples(2, 1));
        let b = Dataset::synthetic(&SyntheticSpec::cifar_like(1).with_samples(2, 1));
        assert!(!a.train.images.approx_eq(&b.train.images, 1e-6));
    }

    #[test]
    fn shapes_and_label_balance() {
        let spec = SyntheticSpec::cifar_like(0).with_samples(6, 3);
        let d = Dataset::synthetic(&spec);
        assert_eq!(d.train.images.dims(), &[60, 3, 16, 16]);
        assert_eq!(d.test.images.dims(), &[30, 3, 16, 16]);
        for c in 0..10 {
            assert_eq!(d.train.labels.iter().filter(|&&l| l == c).count(), 6);
            assert_eq!(d.test.labels.iter().filter(|&&l| l == c).count(), 3);
        }
    }

    #[test]
    fn images_are_finite_and_nontrivial() {
        let d = Dataset::synthetic(&SyntheticSpec::cifar_like(0).with_samples(2, 1));
        assert!(d.train.images.all_finite());
        assert!(d.train.images.max_abs() > 0.1, "images carry signal");
    }

    #[test]
    fn same_class_more_similar_than_cross_class() {
        // With low noise, intra-class distance should be far below
        // inter-class distance — the signal a CNN learns.
        let spec = SyntheticSpec::cifar_like(7)
            .with_samples(2, 1)
            .with_noise(0.01);
        let d = Dataset::synthetic(&spec);
        let px = 3 * 16 * 16;
        let img = |i: usize| &d.train.images.data()[i * px..(i + 1) * px];
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>()
        };
        // Samples i and i+10 share a class (labels cycle through classes).
        let intra = dist(img(0), img(10));
        let inter = dist(img(0), img(1));
        assert!(
            intra < inter,
            "intra-class {intra} should be below inter-class {inter}"
        );
    }

    #[test]
    #[should_panic(expected = "1..=4 channels")]
    fn too_many_channels_rejected() {
        let mut spec = SyntheticSpec::cifar_like(0);
        spec.channels = 5;
        Dataset::synthetic(&spec);
    }
}
