//! Training-time data augmentation (random shift and horizontal flip).
//!
//! The paper trains with the standard CIFAR augmentation (random crop +
//! flip). At the reduced synthetic scale augmentation is optional — the
//! benchmark harness leaves it off by default because the synthetic
//! classes are not flip-invariant — but the transforms are provided and
//! tested for paper-scale runs.

use csq_tensor::Tensor;
use rand::Rng;

/// Randomly translates each image in a `[N, C, H, W]` batch by up to
/// `max_shift` pixels along each axis (zero-filled), a cheap stand-in for
/// pad-and-crop augmentation.
///
/// # Panics
///
/// Panics unless `batch` is rank 4.
pub fn random_shift<R: Rng>(batch: &Tensor, max_shift: usize, rng: &mut R) -> Tensor {
    assert_eq!(batch.rank(), 4, "random_shift requires NCHW input");
    let (n, c, h, w) = (
        batch.dims()[0],
        batch.dims()[1],
        batch.dims()[2],
        batch.dims()[3],
    );
    let m = max_shift as isize;
    let mut out = Tensor::zeros(batch.dims());
    for ni in 0..n {
        let dy = rng.gen_range(-m..=m);
        let dx = rng.gen_range(-m..=m);
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for y in 0..h as isize {
                let sy = y - dy;
                if sy < 0 || sy >= h as isize {
                    continue;
                }
                for x in 0..w as isize {
                    let sx = x - dx;
                    if sx < 0 || sx >= w as isize {
                        continue;
                    }
                    out.data_mut()[base + (y as usize) * w + x as usize] =
                        batch.data()[base + (sy as usize) * w + sx as usize];
                }
            }
        }
    }
    out
}

/// Flips each image horizontally with probability `p`.
///
/// # Panics
///
/// Panics unless `batch` is rank 4 or `p` is outside `[0, 1]`.
pub fn random_hflip<R: Rng>(batch: &Tensor, p: f32, rng: &mut R) -> Tensor {
    assert_eq!(batch.rank(), 4, "random_hflip requires NCHW input");
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let (n, c, h, w) = (
        batch.dims()[0],
        batch.dims()[1],
        batch.dims()[2],
        batch.dims()[3],
    );
    let mut out = batch.clone();
    for ni in 0..n {
        if rng.gen_range(0.0..1.0) >= p {
            continue;
        }
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for y in 0..h {
                for x in 0..w / 2 {
                    let a = base + y * w + x;
                    let b = base + y * w + (w - 1 - x);
                    out.data_mut().swap(a, b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_shift_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = random_shift(&x, 0, &mut rng);
        assert!(y.approx_eq(&x, 0.0));
    }

    #[test]
    fn shift_preserves_mass_or_loses_at_border() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let x = Tensor::ones(&[4, 1, 6, 6]);
        let y = random_shift(&x, 2, &mut rng);
        // Shifting 1s can only lose mass at borders, never create it.
        assert!(y.sum() <= x.sum());
        assert!(y.max() <= 1.0 + 1e-6);
    }

    #[test]
    fn hflip_p0_identity_p1_mirrors() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 1, 4]);
        assert!(random_hflip(&x, 0.0, &mut rng).approx_eq(&x, 0.0));
        let y = random_hflip(&x, 1.0, &mut rng);
        assert_eq!(y.data(), &[4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn double_flip_is_identity() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 1, 4]);
        let y = random_hflip(&random_hflip(&x, 1.0, &mut rng), 1.0, &mut rng);
        assert!(y.approx_eq(&x, 0.0));
    }
}
