//! Synthetic image-classification datasets standing in for CIFAR-10 and
//! ImageNet.
//!
//! The CSQ paper evaluates on CIFAR-10 and ImageNet, which are not
//! available in this environment (and would not be trainable at full scale
//! on one CPU core). This crate provides the substitution documented in
//! DESIGN.md §2: a procedural generator that assigns each class a fixed
//! visual *template* — a superposition of class-specific Gaussian blobs
//! and an oriented sinusoidal grating — and renders samples by jittering,
//! scaling and noising that template. The resulting task:
//!
//! * is learnable by the paper's CNN architectures through the same code
//!   path (conv → BN → ReLU stacks trained with SGD and cross entropy),
//! * has tunable difficulty (noise/jitter), so accuracy degrades smoothly
//!   under aggressive quantization — the phenomenon every table of the
//!   paper measures,
//! * is fully deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use csq_data::{Dataset, SyntheticSpec};
//!
//! let spec = SyntheticSpec::cifar_like(0).with_samples(8, 4);
//! let data = Dataset::synthetic(&spec);
//! assert_eq!(data.train.len(), 80);
//! assert_eq!(data.test.len(), 40);
//! ```

#![deny(missing_docs)]
// Library code must surface failures as structured errors (or documented
// contract panics via `panic!`/`assert!`), never ad-hoc unwraps. Tests and
// doctests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod augment;
pub mod cifar;
pub mod loader;
pub mod synth;

pub use cifar::{load_cifar10, load_cifar10_or_synthetic, CifarError};
pub use loader::{Batch, DataLoader};
pub use synth::{Dataset, Split, SyntheticSpec};
