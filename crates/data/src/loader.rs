//! Mini-batch iteration with optional shuffling.

use crate::synth::Split;
use csq_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One mini-batch: stacked images and labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Images, `[B, C, H, W]`.
    pub images: Tensor,
    /// Class index per image.
    pub labels: Vec<usize>,
}

/// Deterministic mini-batch loader over a [`Split`].
///
/// Each call to [`DataLoader::epoch`] produces a freshly shuffled set of
/// batches (shuffling is seeded, so runs are reproducible); pass
/// `shuffle = false` for evaluation order.
///
/// The loader is `Clone` (the RNG state clones with it) and records how
/// many epochs it has served, so crash/resume support can reconstruct the
/// exact shuffle position either by cloning a known-good loader or by
/// replaying shuffles with [`DataLoader::fast_forward`].
#[derive(Debug, Clone)]
pub struct DataLoader {
    batch_size: usize,
    shuffle: bool,
    seed: u64,
    epochs_served: u64,
    rng: ChaCha8Rng,
}

impl DataLoader {
    /// Creates a loader.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: usize, shuffle: bool, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        DataLoader {
            batch_size,
            shuffle,
            seed,
            epochs_served: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The seed this loader was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of epochs served so far (counted only for splits of
    /// `dataset_len` matching the epochs actually drawn).
    pub fn epochs_served(&self) -> u64 {
        self.epochs_served
    }

    /// Advances the shuffle RNG as if `epochs` epochs over a split of
    /// `dataset_len` samples had already been drawn. Because the RNG is
    /// consumed only by the per-epoch shuffle (a function of the split
    /// length alone), a fresh loader fast-forwarded to epoch *k* produces
    /// byte-identical batches to one that actually served *k* epochs —
    /// the property snapshot resume relies on.
    pub fn fast_forward(&mut self, epochs: u64, dataset_len: usize) {
        for _ in 0..epochs {
            if self.shuffle {
                let mut order: Vec<usize> = (0..dataset_len).collect();
                order.shuffle(&mut self.rng);
            }
            self.epochs_served += 1;
        }
    }

    /// Produces the batches for one epoch over `split`. The final batch
    /// may be smaller than `batch_size`.
    pub fn epoch(&mut self, split: &Split) -> Vec<Batch> {
        let n = split.len();
        let mut order: Vec<usize> = (0..n).collect();
        if self.shuffle {
            order.shuffle(&mut self.rng);
        }
        self.epochs_served += 1;
        let px: usize = split.images.dims()[1..].iter().product();
        let dims_tail = split.images.dims()[1..].to_vec();
        let mut out = Vec::new();
        for chunk in order.chunks(self.batch_size) {
            let mut data = Vec::with_capacity(chunk.len() * px);
            let mut labels = Vec::with_capacity(chunk.len());
            for &i in chunk {
                data.extend_from_slice(&split.images.data()[i * px..(i + 1) * px]);
                labels.push(split.labels[i]);
            }
            let mut dims = vec![chunk.len()];
            dims.extend_from_slice(&dims_tail);
            out.push(Batch {
                images: Tensor::from_vec(data, &dims),
                labels,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{Dataset, SyntheticSpec};

    fn tiny() -> Dataset {
        Dataset::synthetic(&SyntheticSpec::cifar_like(0).with_samples(3, 1))
    }

    #[test]
    fn covers_all_samples_once() {
        let d = tiny();
        let mut loader = DataLoader::new(8, true, 0);
        let batches = loader.epoch(&d.train);
        let total: usize = batches.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total, d.train.len());
        // Every class appears the right number of times.
        let mut counts = vec![0usize; 10];
        for b in &batches {
            for &l in &b.labels {
                counts[l] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 3));
    }

    #[test]
    fn shuffle_changes_order_between_epochs() {
        let d = tiny();
        let mut loader = DataLoader::new(30, true, 1);
        let a: Vec<usize> = loader.epoch(&d.train)[0].labels.clone();
        let b: Vec<usize> = loader.epoch(&d.train)[0].labels.clone();
        assert_ne!(a, b, "two epochs should shuffle differently");
    }

    #[test]
    fn unshuffled_order_is_stable() {
        let d = tiny();
        let mut loader = DataLoader::new(7, false, 0);
        let a: Vec<usize> = loader.epoch(&d.test).iter().flat_map(|b| b.labels.clone()).collect();
        assert_eq!(a, d.test.labels);
    }

    #[test]
    fn batch_larger_than_dataset_yields_one_batch() {
        let d = tiny();
        let mut loader = DataLoader::new(10_000, false, 0);
        let batches = loader.epoch(&d.train);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].labels.len(), d.train.len());
    }

    #[test]
    fn empty_split_yields_no_batches() {
        let empty = crate::synth::Split {
            images: csq_tensor::Tensor::zeros(&[0, 3, 4, 4]),
            labels: vec![],
        };
        let mut loader = DataLoader::new(8, true, 0);
        assert!(loader.epoch(&empty).is_empty());
    }

    #[test]
    fn fast_forward_matches_served_epochs() {
        let d = tiny();
        let mut served = DataLoader::new(8, true, 42);
        for _ in 0..3 {
            served.epoch(&d.train);
        }
        let mut ffwd = DataLoader::new(8, true, 42);
        ffwd.fast_forward(3, d.train.len());
        assert_eq!(ffwd.epochs_served(), served.epochs_served());
        let a: Vec<Vec<usize>> = served.epoch(&d.train).iter().map(|b| b.labels.clone()).collect();
        let b: Vec<Vec<usize>> = ffwd.epoch(&d.train).iter().map(|b| b.labels.clone()).collect();
        assert_eq!(a, b, "epoch 4 must be identical after fast-forward");
    }

    #[test]
    fn cloned_loader_replays_identically() {
        let d = tiny();
        let mut loader = DataLoader::new(8, true, 7);
        loader.epoch(&d.train);
        let mut snap = loader.clone();
        let a: Vec<Vec<usize>> = loader.epoch(&d.train).iter().map(|b| b.labels.clone()).collect();
        let b: Vec<Vec<usize>> = snap.epoch(&d.train).iter().map(|b| b.labels.clone()).collect();
        assert_eq!(a, b);
        assert_eq!(loader.seed(), 7);
    }

    #[test]
    fn last_batch_may_be_partial() {
        let d = tiny();
        let mut loader = DataLoader::new(7, false, 0);
        let batches = loader.epoch(&d.train); // 30 samples -> 4×7 + 2
        assert_eq!(batches.last().unwrap().labels.len(), 2);
        assert_eq!(batches.last().unwrap().images.dims()[0], 2);
    }
}
