//! Deterministic data-parallel runtime built on scoped threads.
//!
//! Every hot loop in the workspace — matmul, im2col convolution, and the
//! per-element-per-bit gate forward/adjoint in `csq-core` — fans out
//! through this module. The design goal is *bit-exact determinism at any
//! thread count*, which the resume-equivalence guarantee of the trainer
//! depends on:
//!
//! 1. **Fixed partitions.** Work is split into chunks whose boundaries
//!    are a function of the problem shape only (see [`chunk_len`]),
//!    never of the thread count. Threads *steal* tasks dynamically from
//!    a shared atomic counter — scheduling is nondeterministic, but the
//!    task → data mapping is not.
//! 2. **Disjoint writes.** Each task owns a disjoint output range
//!    ([`par_chunks_mut`], [`SharedSliceMut`]), so no write order is
//!    observable.
//! 3. **In-order reduction.** Cross-task reductions collect one partial
//!    per task ([`par_map_collect`] returns them in task-index order)
//!    and fold them serially in ascending task order. Floating-point
//!    accumulation order is therefore identical whether the partials
//!    were computed by 1 thread or 64.
//!
//! The pool size comes from the `CSQ_THREADS` environment variable
//! (default: the machine's available parallelism), can be set globally
//! with [`set_global_threads`], and can be overridden for the current
//! thread with [`with_threads`] — which is how the determinism tests run
//! the same training twice at different widths inside one process.
//!
//! No new dependencies: workers are `std::thread::scope` threads spawned
//! per parallel region. Region granularity is controlled by sizing tasks
//! to at least [`TASK_WORK`] scalar operations, so tiny tensors never
//! pay a spawn.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolved global thread count; 0 until first use (then lazily
/// initialized from `CSQ_THREADS` / available parallelism).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`with_threads`]; 0 = none.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn resolve_from_env() -> usize {
    std::env::var("CSQ_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(default_threads)
}

/// The worker-thread count parallel regions started from this thread
/// will use.
///
/// Resolution order: a [`with_threads`] override on the current thread,
/// then the global count ([`set_global_threads`] or, on first use, the
/// `CSQ_THREADS` environment variable, defaulting to the machine's
/// available parallelism). Always at least 1.
pub fn current_threads() -> usize {
    let over = THREAD_OVERRIDE.with(|c| c.get());
    if over != 0 {
        return over;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    let resolved = resolve_from_env();
    // Racing first calls may both resolve; they resolve identically.
    GLOBAL_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Sets the process-wide thread count (clamped to at least 1). Results
/// do not depend on this value — only wall-clock time does.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Runs `f` with the thread count overridden to `n` on the current
/// thread (restored afterwards, even on panic). Parallel regions entered
/// inside `f` — including the branches of [`par_join`] — use `n`
/// workers. Because the runtime is deterministic, `f` computes
/// bit-identical results for every `n`; this is the hook the
/// 1-vs-4-thread equivalence tests use.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(n.max(1)));
    let _restore = Restore(prev);
    f()
}

/// Target scalar operations per parallel task. Large enough that the
/// per-task scheduling cost (one atomic fetch-add) and the per-region
/// spawn cost are noise; small enough that dynamic stealing can balance
/// uneven progress.
pub const TASK_WORK: usize = 8192;

/// Chunk length (in items) such that one task covers at least
/// [`TASK_WORK`] scalar operations, given `work_per_item` operations per
/// item. Depends only on the problem shape — never on the thread count —
/// so chunked reductions are reproducible on any machine.
pub fn chunk_len(n_items: usize, work_per_item: usize) -> usize {
    let per = work_per_item.max(1);
    TASK_WORK.div_ceil(per).clamp(1, n_items.max(1))
}

/// Executes `f(task_index)` for every index in `0..n_tasks`, fanned out
/// over [`current_threads`] scoped workers. Tasks are claimed from an
/// atomic counter (dynamic load balancing); since each index maps to a
/// fixed piece of work, the claiming order is unobservable. Falls back
/// to a plain serial loop when one thread (or one task) suffices. A
/// panic in any task propagates after all workers have joined.
pub fn for_each_task<F>(n_tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if n_tasks == 0 {
        return;
    }
    let threads = current_threads().min(n_tasks);
    if threads <= 1 {
        for t in 0..n_tasks {
            f(t);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let (f, next) = (&f, &next);
    let work = move || loop {
        let t = next.fetch_add(1, Ordering::Relaxed);
        if t >= n_tasks {
            break;
        }
        f(t);
    };
    // One region-level span (never per-task): while tracing is
    // disabled this is a single relaxed atomic load, and the task →
    // data mapping below is unaffected either way, so the determinism
    // contract holds with tracing on or off.
    let _region = csq_obs::span!(
        "par",
        "dispatch",
        "tasks" => n_tasks,
        "threads" => threads,
    );
    std::thread::scope(|s| {
        for _ in 1..threads {
            s.spawn(work);
        }
        work();
    });
}

/// Raw-pointer view of a mutable slice that tasks may carve disjoint
/// sub-slices from concurrently. The safe constructor borrows the slice
/// mutably for the view's lifetime, so no other access can exist; the
/// burden of disjointness is on [`slice_mut`](SharedSliceMut::slice_mut)
/// callers.
pub struct SharedSliceMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the view only hands out sub-slices through an `unsafe` method
// whose contract requires disjoint ranges; with that upheld, concurrent
// use from multiple threads is data-race free for T: Send.
unsafe impl<T: Send> Send for SharedSliceMut<'_, T> {}
unsafe impl<T: Send> Sync for SharedSliceMut<'_, T> {}

impl<'a, T> SharedSliceMut<'a, T> {
    /// Wraps `slice` for disjoint concurrent sub-slicing.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSliceMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrows `start..start + len` mutably.
    ///
    /// # Safety
    ///
    /// Concurrent callers must request pairwise-disjoint ranges, and the
    /// range must lie within the slice (checked only in debug builds).
    // `&mut` out of `&self` is this type's entire purpose: the safe
    // constructor holds the unique borrow, and the safety contract above
    // makes concurrent sub-borrows disjoint.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        debug_assert!(start + len <= self.len, "disjoint range out of bounds");
        std::slice::from_raw_parts_mut(self.ptr.add(start), len)
    }
}

/// Splits `data` into fixed chunks of `chunk` items and runs
/// `f(chunk_index, start_offset, chunk_slice)` for each, in parallel.
/// The last chunk may be short. Chunk boundaries depend only on
/// `data.len()` and `chunk`, so any cross-chunk reduction the caller
/// performs afterwards (in chunk order) is thread-count independent.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let n_tasks = len.div_ceil(chunk);
    let shared = SharedSliceMut::new(data);
    for_each_task(n_tasks, move |t| {
        let start = t * chunk;
        let clen = chunk.min(len - start);
        // SAFETY: task t owns exactly start..start+clen; tasks are
        // pairwise disjoint by construction.
        let s = unsafe { shared.slice_mut(start, clen) };
        f(t, start, s);
    });
}

struct SharedPtr<T>(*mut T);
// SAFETY: used only to write pairwise-distinct slots from distinct tasks.
unsafe impl<T: Send> Sync for SharedPtr<T> {}

/// Runs `f(task_index)` for every index in parallel and returns the
/// results **in task-index order** — the deterministic-reduction
/// primitive: fold the returned partials left-to-right and the
/// accumulation order matches a serial run exactly.
pub fn par_map_collect<T, F>(n_tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n_tasks);
    slots.resize_with(n_tasks, || None);
    let ptr = SharedPtr(slots.as_mut_ptr());
    let ptr = &ptr;
    for_each_task(n_tasks, move |t| {
        // SAFETY: each task index writes exactly one distinct slot, and
        // the Vec outlives the scoped region.
        unsafe { *ptr.0.add(t) = Some(f(t)) };
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task index ran exactly once"))
        .collect()
}

/// Runs two independent closures, concurrently when more than one thread
/// is configured. The spawned branch inherits the caller's effective
/// thread count, so nested parallel regions behave identically either
/// way. Results are `(a, b)` regardless of which finished first.
pub fn par_join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    let threads = current_threads();
    if threads <= 1 {
        let a = fa();
        let b = fb();
        return (a, b);
    }
    std::thread::scope(|s| {
        let handle = s.spawn(move || with_threads(threads, fb));
        let a = fa();
        let b = match handle.join() {
            Ok(b) => b,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (a, b)
    })
}

/// A reusable arena of scratch buffers, shared across parallel tasks
/// and across training steps.
///
/// Layers keep one pool alive for their whole lifetime so per-batch
/// workspaces (im2col column matrices, per-sample gradient partials) are
/// allocated once and recycled instead of reallocated every step. `take`
/// hands out a buffer of exactly the requested length with unspecified
/// contents; `take_zeroed` additionally resets every element to
/// `T::default()`; `give` returns a buffer for reuse. The pool is `Sync`
/// (a mutex guards the free list), and buffer identity never affects
/// results — only allocation traffic.
///
/// The element type defaults to `f32` (the training workspaces); the
/// serving path pools `u8` activation-code buffers through the same
/// type.
#[derive(Debug, Default)]
pub struct ScratchPool<T = f32> {
    bufs: Mutex<Vec<Vec<T>>>,
}

impl<T: Copy + Default> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    fn pop(&self) -> Vec<T> {
        match self.bufs.lock() {
            Ok(mut g) => g.pop().unwrap_or_default(),
            Err(_) => Vec::new(),
        }
    }

    /// A buffer of exactly `len` elements with **unspecified contents**
    /// (callers must fully overwrite it).
    pub fn take(&self, len: usize) -> Vec<T> {
        let mut buf = self.pop();
        buf.resize(len, T::default());
        buf
    }

    /// A buffer of exactly `len` default-valued (zero) elements.
    pub fn take_zeroed(&self, len: usize) -> Vec<T> {
        let mut buf = self.pop();
        buf.clear();
        buf.resize(len, T::default());
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&self, buf: Vec<T>) {
        if let Ok(mut g) = self.bufs.lock() {
            g.push(buf);
        }
    }

    /// Number of idle buffers currently pooled (diagnostics/tests).
    pub fn idle(&self) -> usize {
        self.bufs.lock().map(|g| g.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_threads_is_at_least_one() {
        assert!(current_threads() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(7, current_threads)
        });
        assert_eq!(outer, 7);
        // Override gone after the closures return.
        let over = THREAD_OVERRIDE.with(|c| c.get());
        assert_eq!(over, 0);
    }

    #[test]
    fn with_threads_clamps_zero_to_one() {
        assert_eq!(with_threads(0, current_threads), 1);
    }

    #[test]
    fn chunk_len_is_shape_only_and_bounded() {
        assert_eq!(chunk_len(10, TASK_WORK), 1, "heavy items: one per task");
        assert_eq!(chunk_len(10, 1), 10, "light items: one chunk");
        assert_eq!(chunk_len(0, 5), 1, "degenerate: still positive");
        let big = chunk_len(1_000_000, 8);
        assert_eq!(big, TASK_WORK / 8);
    }

    #[test]
    fn for_each_task_visits_every_index_once() {
        for threads in [1, 2, 4] {
            with_threads(threads, || {
                let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
                for_each_task(37, |t| {
                    hits[t].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn par_chunks_mut_partitions_exactly() {
        for threads in [1, 4] {
            with_threads(threads, || {
                let mut data = vec![0.0f32; 103];
                par_chunks_mut(&mut data, 10, |t, start, chunk| {
                    assert_eq!(start, t * 10);
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = (start + i) as f32;
                    }
                });
                for (i, &v) in data.iter().enumerate() {
                    assert_eq!(v, i as f32);
                }
            });
        }
    }

    #[test]
    fn par_map_collect_returns_in_task_order() {
        for threads in [1, 2, 4] {
            let out = with_threads(threads, || par_map_collect(25, |t| t * t));
            assert_eq!(out, (0..25).map(|t| t * t).collect::<Vec<_>>());
        }
    }

    /// The determinism contract end to end: a chunked float reduction
    /// folded in task order is bit-identical at every thread count.
    #[test]
    fn chunked_reduction_is_bit_identical_across_thread_counts() {
        let data: Vec<f32> = (0..10_000)
            .map(|i| ((i * 2654435761u64 as usize) % 1000) as f32 * 1e-3 - 0.5)
            .collect();
        let chunk = 97; // shape-only choice, deliberately odd
        let reduce = || {
            let n_tasks = data.len().div_ceil(chunk);
            let partials = par_map_collect(n_tasks, |t| {
                let start = t * chunk;
                let end = (start + chunk).min(data.len());
                data[start..end].iter().fold(0.0f32, |a, &v| a + v * v)
            });
            partials.iter().fold(0.0f32, |a, &p| a + p)
        };
        let serial = with_threads(1, reduce);
        for threads in [2, 3, 4, 8] {
            let par = with_threads(threads, reduce);
            assert_eq!(serial.to_bits(), par.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn par_join_returns_both_in_order() {
        for threads in [1, 4] {
            let (a, b) = with_threads(threads, || par_join(|| 1 + 1, || "two"));
            assert_eq!((a, b), (2, "two"));
        }
    }

    #[test]
    fn par_join_propagates_thread_count_to_spawned_branch() {
        let inner = with_threads(4, || par_join(current_threads, current_threads));
        assert_eq!(inner, (4, 4));
    }

    #[test]
    fn scratch_pool_recycles_buffers() {
        let pool: ScratchPool<f32> = ScratchPool::new();
        let b1 = pool.take(64);
        assert_eq!(b1.len(), 64);
        pool.give(b1);
        assert_eq!(pool.idle(), 1);
        let b2 = pool.take_zeroed(32);
        assert_eq!(b2.len(), 32);
        assert!(b2.iter().all(|&v| v == 0.0));
        assert_eq!(pool.idle(), 0, "reused the pooled buffer");
    }

    #[test]
    fn scratch_pool_is_generic_over_element_type() {
        let pool: ScratchPool<u8> = ScratchPool::new();
        let mut b = pool.take_zeroed(16);
        assert!(b.iter().all(|&v| v == 0));
        b[0] = 255;
        pool.give(b);
        let b2 = pool.take_zeroed(8);
        assert!(b2.iter().all(|&v| v == 0), "take_zeroed resets contents");
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                for_each_task(16, |t| {
                    if t == 7 {
                        panic!("task 7 failed");
                    }
                });
            })
        });
        assert!(result.is_err());
    }
}
