//! Shape-keyed routine selector with an optional cached autotune
//! profile.
//!
//! Every GEMM-shaped entry point (`Tensor::{matmul,matmul_tn,matmul_nt,
//! matvec}`, `conv2d*`) asks [`select`] which routine/blueprint pair to
//! run. The decision is a pure function of the op class and problem
//! shape:
//!
//! 1. If a **profile** is loaded (the `CSQ_KERNEL_PROFILE` environment
//!    variable names a file in the committed text format below, read
//!    once per process), an exact `(op, m, k, n)` entry overrides the
//!    table.
//! 2. Otherwise the **static table** ([`static_select`]) decides.
//!
//! Because every routine is bit-identical on the same operands (all
//! keep per-element `p`-ascending accumulation and shape-only parallel
//! chunking), selection affects latency only — a profile can never
//! change a result, and the same profile file always yields the same
//! selections. A missing or corrupt profile degrades to the static
//! table with a typed warning ([`ProfileError`], printed once); it
//! never panics.
//!
//! # Profile file format (v1)
//!
//! ```text
//! csq-kernel-profile v1
//! # comments and blank lines are ignored
//! matmul    128 256 128  packed_panel  panel_f32
//! conv2d     16  27 256  im2col_fused  colstream_f32
//! ```
//!
//! One entry per line: op name ([`FloatOp::name`]), the three GEMM
//! extents (`m k n`; conv uses `oc`, `kdim`, `OH·OW`), then the routine
//! and blueprint names. The routine must be legal for the op
//! ([`allowed`]) and the blueprint must be the routine's own
//! ([`default_blueprint`]) — [`Profile::parse`] rejects anything else,
//! so a loaded profile can only re-rank implemented routines.
//!
//! The [`bit_serial`] submodule is the quantized half of the same
//! selector: the shape×bit-width cost table that decides between the
//! u64 bit-plane kernels and the dense integer kernels for
//! `csq_core::bitplane` / `csq_serve::exec`.

use crate::blueprint::{self, Blueprint};
use crate::routines::RoutineKind;
use std::collections::HashMap;
use std::sync::OnceLock;

/// The float GEMM-shaped op classes the selector routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatOp {
    /// `C = A · B` (`Tensor::matmul`): `m × k · k × n`.
    MatmulNn,
    /// `C = Aᵀ · B` (`Tensor::matmul_tn`, weight-gradient shape).
    MatmulTn,
    /// `C = A · Bᵀ` (`Tensor::matmul_nt`, input-gradient shape).
    MatmulNt,
    /// `out = A · v` (`Tensor::matvec`): `n` is 1.
    Matvec,
    /// Forward conv as per-sample GEMM: `m = OC`, `k = IC·KH·KW`,
    /// `n = OH·OW`.
    Conv2d,
}

/// Every float op class, for profile validation and the selector dump.
pub static FLOAT_OPS: &[FloatOp] = &[
    FloatOp::MatmulNn,
    FloatOp::MatmulTn,
    FloatOp::MatmulNt,
    FloatOp::Matvec,
    FloatOp::Conv2d,
];

impl FloatOp {
    /// Stable name used in profile files and the selector dump.
    pub fn name(self) -> &'static str {
        match self {
            FloatOp::MatmulNn => "matmul",
            FloatOp::MatmulTn => "matmul_tn",
            FloatOp::MatmulNt => "matmul_nt",
            FloatOp::Matvec => "matvec",
            FloatOp::Conv2d => "conv2d",
        }
    }

    /// Parses a stable op name.
    pub fn parse(name: &str) -> Option<FloatOp> {
        FLOAT_OPS.iter().copied().find(|o| o.name() == name)
    }
}

/// What the selector picked: a routine and the tiling blueprint it runs
/// with — the pair the obs profiler tags kernel samples with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// The routine to dispatch to.
    pub routine: RoutineKind,
    /// The tiling the routine runs with (its canonical blueprint).
    pub blueprint: &'static Blueprint,
}

/// The routines an op class may legally dispatch to. The first entry is
/// never wrong (it handles every shape of the class); profiles may only
/// pick from this list.
pub fn allowed(op: FloatOp) -> &'static [RoutineKind] {
    match op {
        FloatOp::MatmulNn => &[
            RoutineKind::Blocked,
            RoutineKind::PackedPanel,
            RoutineKind::VecmatCols,
        ],
        FloatOp::MatmulTn => &[RoutineKind::TallSkinnyTn],
        FloatOp::MatmulNt => &[RoutineKind::TallSkinnyNt, RoutineKind::MatvecRows],
        FloatOp::Matvec => &[RoutineKind::MatvecRows],
        FloatOp::Conv2d => &[RoutineKind::Im2colGemm, RoutineKind::Im2colFused],
    }
}

/// The canonical blueprint each routine runs with.
pub fn default_blueprint(routine: RoutineKind) -> &'static Blueprint {
    match routine {
        RoutineKind::PackedPanel => &blueprint::PANEL_F32,
        RoutineKind::Blocked => &blueprint::BLOCKED_KC64,
        RoutineKind::TallSkinnyTn | RoutineKind::TallSkinnyNt => &blueprint::ROWDOT_F32,
        RoutineKind::MatvecRows | RoutineKind::VecmatCols => &blueprint::VECMAT_F32,
        RoutineKind::Im2colFused => &blueprint::COLSTREAM_F32,
        RoutineKind::Im2colGemm => &blueprint::IM2COL_F32,
    }
}

fn selection(routine: RoutineKind) -> Selection {
    Selection {
        routine,
        blueprint: default_blueprint(routine),
    }
}

/// The static shape table: the deterministic default when no profile
/// entry covers `(op, m, k, n)`.
///
/// * Single-row products go to the vecmat routines (batch-1 inference).
/// * Multi-row `matmul` takes the packed-panel GEMM once the problem is
///   big enough to amortize packing; tiny problems keep the blocked
///   loop.
/// * The transposed gradient shapes keep their fused-transpose kernels
///   (TN retains the per-element zero skip the bit-plane adjoint needs).
/// * Conv streams fused column panels whenever a sample has at least
///   one full panel of output positions; tiny spatial extents
///   materialize (the "matrix" already fits a panel).
pub fn static_select(op: FloatOp, m: usize, k: usize, n: usize) -> Selection {
    match op {
        FloatOp::MatmulNn => {
            if m == 1 {
                selection(RoutineKind::VecmatCols)
            } else if m >= 16 && n >= 16 && k >= 32 {
                selection(RoutineKind::PackedPanel)
            } else {
                selection(RoutineKind::Blocked)
            }
        }
        FloatOp::MatmulTn => selection(RoutineKind::TallSkinnyTn),
        FloatOp::MatmulNt => {
            if m == 1 {
                selection(RoutineKind::MatvecRows)
            } else {
                selection(RoutineKind::TallSkinnyNt)
            }
        }
        FloatOp::Matvec => selection(RoutineKind::MatvecRows),
        FloatOp::Conv2d => {
            let _ = m;
            if n >= blueprint::COLSTREAM_F32.nc {
                selection(RoutineKind::Im2colFused)
            } else {
                selection(RoutineKind::Im2colGemm)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Autotune profiles
// ---------------------------------------------------------------------------

/// Why a kernel profile file was rejected. Rejection is never fatal:
/// the selector warns once and falls back to [`static_select`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// The file could not be read.
    Io {
        /// Path that failed.
        path: String,
        /// OS error description.
        detail: String,
    },
    /// The first non-blank line is not `csq-kernel-profile v1`.
    BadHeader {
        /// What the first line actually was.
        found: String,
    },
    /// A line does not have the five fields `op m k n routine blueprint`.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// The routine named on a line is not legal for its op class.
    IncompatibleRoutine {
        /// 1-based line number.
        line: usize,
        /// The op class.
        op: &'static str,
        /// The offending routine name.
        routine: String,
    },
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Io { path, detail } => {
                write!(f, "cannot read kernel profile {path}: {detail}")
            }
            ProfileError::BadHeader { found } => write!(
                f,
                "kernel profile header must be `csq-kernel-profile v1`, found `{found}`"
            ),
            ProfileError::BadLine { line, detail } => {
                write!(f, "kernel profile line {line}: {detail}")
            }
            ProfileError::IncompatibleRoutine { line, op, routine } => write!(
                f,
                "kernel profile line {line}: routine `{routine}` is not implemented for op `{op}`"
            ),
        }
    }
}

impl std::error::Error for ProfileError {}

/// A parsed autotune profile: exact `(op, m, k, n)` → routine
/// overrides. Entries are validated at parse time, so a loaded profile
/// can only pick implemented routines.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    entries: HashMap<(FloatOp, usize, usize, usize), RoutineKind>,
}

impl Profile {
    /// An empty profile (every lookup misses).
    pub fn new() -> Profile {
        Profile::default()
    }

    /// Number of shape entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the profile has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds or replaces one entry.
    ///
    /// # Panics
    ///
    /// Panics if `routine` is not in [`allowed`] for `op` — builders
    /// (autotune) only offer legal candidates.
    pub fn insert(&mut self, op: FloatOp, m: usize, k: usize, n: usize, routine: RoutineKind) {
        assert!(
            allowed(op).contains(&routine),
            "routine {} is not implemented for op {}",
            routine.name(),
            op.name()
        );
        self.entries.insert((op, m, k, n), routine);
    }

    /// The override for an exact shape, if any.
    pub fn get(&self, op: FloatOp, m: usize, k: usize, n: usize) -> Option<Selection> {
        self.entries.get(&(op, m, k, n)).copied().map(selection)
    }

    /// Parses the committed v1 text format.
    ///
    /// # Errors
    ///
    /// Any malformed header, field count, number, unknown name, or
    /// op/routine mismatch is a typed [`ProfileError`] naming the line.
    pub fn parse(text: &str) -> Result<Profile, ProfileError> {
        let mut lines = text.lines().enumerate();
        let header = lines
            .by_ref()
            .find(|(_, l)| !l.trim().is_empty())
            .map(|(_, l)| l.trim().to_string())
            .unwrap_or_default();
        if header != "csq-kernel-profile v1" {
            return Err(ProfileError::BadHeader { found: header });
        }
        let mut profile = Profile::new();
        for (idx, raw) in lines {
            let line = idx + 1;
            let text = raw.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = text.split_whitespace().collect();
            if fields.len() != 6 {
                return Err(ProfileError::BadLine {
                    line,
                    detail: format!(
                        "expected `op m k n routine blueprint` (6 fields), found {}",
                        fields.len()
                    ),
                });
            }
            let op = FloatOp::parse(fields[0]).ok_or_else(|| ProfileError::BadLine {
                line,
                detail: format!("unknown op `{}`", fields[0]),
            })?;
            let dims: Vec<usize> = fields[1..4]
                .iter()
                .map(|f| f.parse::<usize>())
                .collect::<Result<_, _>>()
                .map_err(|_| ProfileError::BadLine {
                    line,
                    detail: format!(
                        "non-numeric shape in `{} {} {}`",
                        fields[1], fields[2], fields[3]
                    ),
                })?;
            let routine = RoutineKind::parse(fields[4]).ok_or_else(|| ProfileError::BadLine {
                line,
                detail: format!("unknown routine `{}`", fields[4]),
            })?;
            if !allowed(op).contains(&routine) {
                return Err(ProfileError::IncompatibleRoutine {
                    line,
                    op: op.name(),
                    routine: fields[4].to_string(),
                });
            }
            let bp = blueprint::by_name(fields[5]).ok_or_else(|| ProfileError::BadLine {
                line,
                detail: format!("unknown blueprint `{}`", fields[5]),
            })?;
            if bp.name != default_blueprint(routine).name {
                return Err(ProfileError::BadLine {
                    line,
                    detail: format!(
                        "routine `{}` runs blueprint `{}`, not `{}`",
                        fields[4],
                        default_blueprint(routine).name,
                        bp.name
                    ),
                });
            }
            profile.insert(op, dims[0], dims[1], dims[2], routine);
        }
        Ok(profile)
    }

    /// Reads and parses a profile file.
    ///
    /// # Errors
    ///
    /// [`ProfileError::Io`] when the file cannot be read, plus every
    /// [`Profile::parse`] error.
    pub fn load(path: &str) -> Result<Profile, ProfileError> {
        let text = std::fs::read_to_string(path).map_err(|e| ProfileError::Io {
            path: path.to_string(),
            detail: e.to_string(),
        })?;
        Profile::parse(&text)
    }

    /// Serializes to the committed v1 text format (entries in a stable
    /// sorted order, so re-serializing is deterministic).
    pub fn to_text(&self) -> String {
        let mut rows: Vec<(&'static str, usize, usize, usize, RoutineKind)> = self
            .entries
            .iter()
            .map(|(&(op, m, k, n), &r)| (op.name(), m, k, n, r))
            .collect();
        rows.sort_by(|a, b| {
            (a.0, a.1, a.2, a.3, a.4.name()).cmp(&(b.0, b.1, b.2, b.3, b.4.name()))
        });
        let mut out = String::from("csq-kernel-profile v1\n");
        for (op, m, k, n, r) in rows {
            out.push_str(&format!(
                "{op} {m} {k} {n} {} {}\n",
                r.name(),
                default_blueprint(r).name
            ));
        }
        out
    }
}

/// What the one-time `CSQ_KERNEL_PROFILE` load produced.
enum LoadedProfile {
    /// No profile requested.
    Unset,
    /// Loaded and validated.
    Loaded(Profile),
    /// Requested but rejected; the warning was printed at load time.
    Failed(ProfileError),
}

fn global_profile() -> &'static LoadedProfile {
    static PROFILE: OnceLock<LoadedProfile> = OnceLock::new();
    PROFILE.get_or_init(|| match std::env::var("CSQ_KERNEL_PROFILE") {
        Err(_) => LoadedProfile::Unset,
        Ok(path) if path.trim().is_empty() => LoadedProfile::Unset,
        Ok(path) => match Profile::load(&path) {
            Ok(p) => LoadedProfile::Loaded(p),
            Err(e) => {
                eprintln!("csq-tensor: {e}; falling back to the static selector table");
                LoadedProfile::Failed(e)
            }
        },
    })
}

/// The process-wide profile state: `Ok(Some)` when `CSQ_KERNEL_PROFILE`
/// loaded, `Ok(None)` when unset, `Err` when it was rejected (the
/// selector is already running on the static table).
pub fn profile_status() -> Result<Option<&'static Profile>, &'static ProfileError> {
    match global_profile() {
        LoadedProfile::Unset => Ok(None),
        LoadedProfile::Loaded(p) => Ok(Some(p)),
        LoadedProfile::Failed(e) => Err(e),
    }
}

/// Selects the routine for one op/shape against an explicit profile
/// (`None` = static table only). Pure: same inputs, same selection.
pub fn select_with(
    profile: Option<&Profile>,
    op: FloatOp,
    m: usize,
    k: usize,
    n: usize,
) -> Selection {
    profile
        .and_then(|p| p.get(op, m, k, n))
        .unwrap_or_else(|| static_select(op, m, k, n))
}

/// Selects the routine for one op/shape using the process-wide profile
/// (loaded once from `CSQ_KERNEL_PROFILE`).
pub fn select(op: FloatOp, m: usize, k: usize, n: usize) -> Selection {
    let profile = match global_profile() {
        LoadedProfile::Loaded(p) => Some(p),
        _ => None,
    };
    select_with(profile, op, m, k, n)
}

// ---------------------------------------------------------------------------
// Bit-serial (quantized inference) selection
// ---------------------------------------------------------------------------

/// The quantized half of the selector: the deterministic shape×bit-width
/// cost table deciding between the u64 bit-plane kernels and the dense
/// integer kernels. `csq_core::bitplane::select_kernel` and the serve
/// executor dispatch through here — neither carries a private cost
/// model anymore.
pub mod bit_serial {
    use crate::blueprint::{self, Blueprint};

    /// Activation bit planes (activations are unsigned 8-bit codes).
    pub const ACT_PLANES: usize = 8;

    /// Cost-model constants, in units of one *vectorized* dense MAC
    /// (~0.2 ns on the reference machine). Measured against this
    /// workspace's own kernels; see DESIGN.md §15 for the calibration
    /// runs.
    pub mod cost {
        /// One AND+popcount+accumulate over a u64 word (64 products).
        pub const WORD_OP: u64 = 6;
        /// Transposing one activation code into its bit-plane lanes
        /// (includes the im2col gather on the conv path).
        pub const PACK_PER_CODE: u64 = 25;
        /// One MAC of the branchy scalar integer conv kernel.
        pub const CONV_DENSE_MAC: u64 = 13;
        /// One MAC of the auto-vectorized integer linear kernel.
        pub const LINEAR_DENSE_MAC: u64 = 1;
    }

    /// Which dense kernel the bit-plane class competes against — their
    /// cost per multiply-accumulate differs enormously (the conv kernel
    /// is a branchy scalar loop; the linear kernel auto-vectorizes), so
    /// the selector must know which one it is displacing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum BitSerialOp {
        /// Displacing `conv2d_integer` (padded, strided scalar loops).
        Conv2d,
        /// Displacing `linear_integer` (contiguous dense dot products).
        Linear,
    }

    /// Which bit-plane routine fits a GEMM row count.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum BitSerialRoutine {
        /// Batched panel GEMM: activation planes packed per row block.
        PanelGemm,
        /// Batch-1 matrix–vector: parallelism over output columns.
        Vecmat,
    }

    /// The class the cost table picked.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum BitSerialChoice {
        /// Run the u64 AND/popcount kernels with the given routine.
        Bitplane(BitSerialRoutine),
        /// Fall back to the dense integer kernel.
        DenseInteger,
    }

    /// A bit-serial selection: the class/routine choice plus the
    /// blueprint tag for profiling.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct BitSerialSelection {
        /// What to run.
        pub choice: BitSerialChoice,
        /// `lanes_u64` for the bit-plane class, `dense_i64` otherwise.
        pub blueprint: &'static Blueprint,
    }

    /// The packed shape of one quantized weighted op, as the cost table
    /// sees it.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct BitSerialShape {
        /// GEMM rows (im2col rows for conv, batch size for linear).
        pub batch_rows: usize,
        /// Output rows of the weight.
        pub out_rows: usize,
        /// Reduction length.
        pub k: usize,
        /// `⌈k/64⌉` packed words per lane row.
        pub words: usize,
        /// Active plane×sign passes (0 = fully pruned weight).
        pub passes: usize,
    }

    /// The bit-plane routine for a GEMM row count: vecmat for a single
    /// row, panel GEMM otherwise (the PanelGemm/Vecmat split that used
    /// to live in `csq_core::bitplane::Routine::for_batch`).
    pub fn routine_for_rows(batch_rows: usize) -> BitSerialRoutine {
        if batch_rows <= 1 {
            BitSerialRoutine::Vecmat
        } else {
            BitSerialRoutine::PanelGemm
        }
    }

    /// Deterministic shape×bit-width kernel-class table: compares the
    /// estimated per-row cost of `passes × ACT_PLANES` AND/popcount
    /// sweeps (plus activation packing) against the dense integer
    /// kernel it would displace. Integer arithmetic on shapes only — no
    /// timing feedback — so the same op on the same shape always picks
    /// the same class.
    pub fn select(op: BitSerialOp, shape: &BitSerialShape) -> BitSerialSelection {
        let routine = routine_for_rows(shape.batch_rows);
        // A fully pruned weight is free on the bit-plane path: no
        // passes, no work, output identically zero.
        if shape.passes == 0 {
            return BitSerialSelection {
                choice: BitSerialChoice::Bitplane(routine),
                blueprint: &blueprint::LANES_U64,
            };
        }
        let bitplane_per_row = cost::PACK_PER_CODE * shape.k as u64
            + shape.out_rows as u64
                * shape.passes as u64
                * ACT_PLANES as u64
                * shape.words as u64
                * cost::WORD_OP;
        let dense_mac = match op {
            BitSerialOp::Conv2d => cost::CONV_DENSE_MAC,
            BitSerialOp::Linear => cost::LINEAR_DENSE_MAC,
        };
        let integer_per_row = shape.out_rows as u64 * shape.k as u64 * dense_mac;
        if bitplane_per_row < integer_per_row {
            BitSerialSelection {
                choice: BitSerialChoice::Bitplane(routine),
                blueprint: &blueprint::LANES_U64,
            }
        } else {
            BitSerialSelection {
                choice: BitSerialChoice::DenseInteger,
                blueprint: &blueprint::DENSE_I64,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Profiler glue (tensor-level kernel rows)
// ---------------------------------------------------------------------------

/// `Some(now)` when the obs kernel profiler is recording (one relaxed
/// atomic load on the quiet path).
pub(crate) fn prof_start() -> Option<std::time::Instant> {
    csq_obs::profiler::global()
        .enabled()
        .then(std::time::Instant::now)
}

/// Records one tensor-level kernel sample tagged with the selection's
/// routine + blueprint. Tensor rows use their own op kinds (`gemm_nn`,
/// `gemm_tn`, `gemm_nt`, `gemm_mv`, `conv_im2col`) so they never
/// collide with the serve executor's per-op rows.
pub(crate) fn prof_record(
    kind: &str,
    sel: Selection,
    dims: &[usize],
    bytes: u64,
    start: Option<std::time::Instant>,
) {
    if let Some(t0) = start {
        let wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        csq_obs::profiler::global().record(
            kind,
            "float",
            sel.routine.name(),
            sel.blueprint.name,
            &csq_obs::profiler::shape_key(dims),
            wall_ns,
            bytes,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_table_routes_by_shape() {
        assert_eq!(
            static_select(FloatOp::MatmulNn, 128, 256, 128).routine,
            RoutineKind::PackedPanel
        );
        assert_eq!(
            static_select(FloatOp::MatmulNn, 4, 7, 5).routine,
            RoutineKind::Blocked
        );
        assert_eq!(
            static_select(FloatOp::MatmulNn, 1, 64, 32).routine,
            RoutineKind::VecmatCols
        );
        assert_eq!(
            static_select(FloatOp::MatmulTn, 64, 128, 32).routine,
            RoutineKind::TallSkinnyTn
        );
        assert_eq!(
            static_select(FloatOp::MatmulNt, 1, 64, 10).routine,
            RoutineKind::MatvecRows
        );
        assert_eq!(
            static_select(FloatOp::MatmulNt, 8, 64, 10).routine,
            RoutineKind::TallSkinnyNt
        );
        assert_eq!(
            static_select(FloatOp::Conv2d, 16, 27, 256).routine,
            RoutineKind::Im2colFused
        );
        assert_eq!(
            static_select(FloatOp::Conv2d, 16, 27, 16).routine,
            RoutineKind::Im2colGemm
        );
    }

    #[test]
    fn every_selection_is_legal_and_canonically_tiled() {
        for &op in FLOAT_OPS {
            for (m, k, n) in [(1, 1, 1), (1, 64, 64), (7, 13, 5), (128, 256, 128)] {
                let sel = static_select(op, m, k, n);
                assert!(allowed(op).contains(&sel.routine), "{op:?} {m}x{k}x{n}");
                assert_eq!(sel.blueprint.name, default_blueprint(sel.routine).name);
            }
        }
    }

    #[test]
    fn profile_round_trips_and_overrides() {
        let text = "csq-kernel-profile v1\n\n# tuned on host X\nmatmul 128 256 128 blocked blocked_kc64\nconv2d 16 27 256 im2col_gemm im2col_f32\n";
        let p = Profile::parse(text).unwrap();
        assert_eq!(p.len(), 2);
        // Overrides hit on the exact shape…
        assert_eq!(
            select_with(Some(&p), FloatOp::MatmulNn, 128, 256, 128).routine,
            RoutineKind::Blocked
        );
        assert_eq!(
            select_with(Some(&p), FloatOp::Conv2d, 16, 27, 256).routine,
            RoutineKind::Im2colGemm
        );
        // …and miss to the static table elsewhere.
        assert_eq!(
            select_with(Some(&p), FloatOp::MatmulNn, 128, 256, 64).routine,
            RoutineKind::PackedPanel
        );
        // Re-serialization is stable.
        let p2 = Profile::parse(&p.to_text()).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn profile_selections_are_deterministic() {
        let text = "csq-kernel-profile v1\nmatmul 33 47 29 packed_panel panel_f32\n";
        let p = Profile::parse(text).unwrap();
        let sweep = || {
            let mut rows = Vec::new();
            for &op in FLOAT_OPS {
                for (m, k, n) in [(1, 3, 9), (33, 47, 29), (128, 256, 128)] {
                    let s = select_with(Some(&p), op, m, k, n);
                    rows.push((op.name(), m, k, n, s.routine.name(), s.blueprint.name));
                }
            }
            rows
        };
        assert_eq!(sweep(), sweep());
    }

    #[test]
    fn corrupt_profiles_are_typed_errors_never_panics() {
        assert!(matches!(
            Profile::parse("not-a-profile\n"),
            Err(ProfileError::BadHeader { .. })
        ));
        assert!(matches!(
            Profile::parse("csq-kernel-profile v1\nmatmul 1 2 packed_panel panel_f32\n"),
            Err(ProfileError::BadLine { line: 2, .. })
        ));
        assert!(matches!(
            Profile::parse("csq-kernel-profile v1\nmatmul x 2 3 packed_panel panel_f32\n"),
            Err(ProfileError::BadLine { .. })
        ));
        assert!(matches!(
            Profile::parse("csq-kernel-profile v1\nbogus 1 2 3 packed_panel panel_f32\n"),
            Err(ProfileError::BadLine { .. })
        ));
        assert!(matches!(
            Profile::parse("csq-kernel-profile v1\nmatmul 1 2 3 warp_mma panel_f32\n"),
            Err(ProfileError::BadLine { .. })
        ));
        // Legal routine, wrong op: typed mismatch.
        assert!(matches!(
            Profile::parse("csq-kernel-profile v1\nmatvec 1 2 3 packed_panel panel_f32\n"),
            Err(ProfileError::IncompatibleRoutine { line: 2, .. })
        ));
        // Legal routine, wrong blueprint for it.
        assert!(matches!(
            Profile::parse("csq-kernel-profile v1\nmatmul 1 2 3 packed_panel blocked_kc64\n"),
            Err(ProfileError::BadLine { .. })
        ));
        // Missing file is a typed Io error.
        assert!(matches!(
            Profile::load("/nonexistent/kernel.profile"),
            Err(ProfileError::Io { .. })
        ));
    }

    #[test]
    fn bit_serial_table_matches_documented_behavior() {
        use bit_serial::*;
        // Fully pruned weights are always bit-plane, routine by batch.
        let pruned = BitSerialShape {
            batch_rows: 1,
            out_rows: 8,
            k: 64,
            words: 1,
            passes: 0,
        };
        assert_eq!(
            select(BitSerialOp::Linear, &pruned).choice,
            BitSerialChoice::Bitplane(BitSerialRoutine::Vecmat)
        );
        // Sparse conv with a big reduction axis: bit-plane panel GEMM.
        let conv = BitSerialShape {
            batch_rows: 256,
            out_rows: 32,
            k: 288,
            words: 5,
            passes: 4,
        };
        assert_eq!(
            select(BitSerialOp::Conv2d, &conv).choice,
            BitSerialChoice::Bitplane(BitSerialRoutine::PanelGemm)
        );
        assert_eq!(
            select(BitSerialOp::Conv2d, &conv).blueprint.name,
            "lanes_u64"
        );
        // Dense 8-bit linear with a small head: the dense kernel keeps it.
        let lin = BitSerialShape {
            batch_rows: 8,
            out_rows: 4,
            k: 128,
            words: 2,
            passes: 16,
        };
        assert_eq!(
            select(BitSerialOp::Linear, &lin).choice,
            BitSerialChoice::DenseInteger
        );
        assert_eq!(
            select(BitSerialOp::Linear, &lin).blueprint.name,
            "dense_i64"
        );
    }
}
