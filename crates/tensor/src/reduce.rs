//! Reductions and row-wise transforms used by losses and metrics.
//!
//! The row-wise transforms and the channel reduction fan out over
//! [`crate::par`]; rows (and channels) are independent, so results are
//! bit-identical at any thread count.

use crate::{par, Tensor};

/// Row-wise softmax of a `[rows, cols]` matrix, computed with the usual
/// max-subtraction for numerical stability.
///
/// # Panics
///
/// Panics unless `logits` is rank 2.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.rank(), 2, "softmax_rows requires a matrix");
    let (r, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = logits.clone();
    if c == 0 {
        return out;
    }
    let rows_per_task = par::chunk_len(r, 4 * c);
    par::par_chunks_mut(out.data_mut(), rows_per_task * c, |_t, _start, chunk| {
        for row in chunk.chunks_exact_mut(c) {
            let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let mut z = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
        }
    });
    out
}

/// Row-wise log-softmax of a `[rows, cols]` matrix.
///
/// # Panics
///
/// Panics unless `logits` is rank 2.
pub fn log_softmax_rows(logits: &Tensor) -> Tensor {
    assert_eq!(logits.rank(), 2, "log_softmax_rows requires a matrix");
    let (r, c) = (logits.dims()[0], logits.dims()[1]);
    let mut out = logits.clone();
    if c == 0 {
        return out;
    }
    let rows_per_task = par::chunk_len(r, 4 * c);
    par::par_chunks_mut(out.data_mut(), rows_per_task * c, |_t, _start, chunk| {
        for row in chunk.chunks_exact_mut(c) {
            let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let z: f32 = row.iter().map(|&v| (v - m).exp()).sum();
            let log_z = z.ln() + m;
            for v in row.iter_mut() {
                *v -= log_z;
            }
        }
    });
    out
}

/// Index of the maximum element in each row of a `[rows, cols]` matrix.
///
/// Ties resolve to the lowest index.
///
/// # Panics
///
/// Panics unless `m` is rank 2 with at least one column.
pub fn argmax_rows(m: &Tensor) -> Vec<usize> {
    assert_eq!(m.rank(), 2, "argmax_rows requires a matrix");
    let (r, c) = (m.dims()[0], m.dims()[1]);
    assert!(c > 0, "argmax over zero columns");
    let mut out = Vec::with_capacity(r);
    for i in 0..r {
        let row = &m.data()[i * c..(i + 1) * c];
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        out.push(best);
    }
    out
}

/// Sums a `[rows, cols]` matrix over its rows, producing `[cols]`.
///
/// # Panics
///
/// Panics unless `m` is rank 2.
pub fn sum_rows(m: &Tensor) -> Tensor {
    assert_eq!(m.rank(), 2, "sum_rows requires a matrix");
    let (r, c) = (m.dims()[0], m.dims()[1]);
    let mut out = Tensor::zeros(&[c]);
    for i in 0..r {
        for j in 0..c {
            out.data_mut()[j] += m.data()[i * c + j];
        }
    }
    out
}

/// Per-channel sum of an NCHW tensor, producing `[C]`. This is the adjoint
/// of broadcasting a per-channel bias.
///
/// # Panics
///
/// Panics unless `t` is rank 4.
pub fn sum_channels(t: &Tensor) -> Tensor {
    assert_eq!(t.rank(), 4, "sum_channels requires NCHW input");
    let (n, c, h, w) = (t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]);
    let hw = h * w;
    let data = t.data();
    // One task per channel; each folds its per-sample plane sums in
    // ascending sample order — the serial accumulation order exactly.
    let vals = par::par_map_collect(c, |ci| {
        let mut acc = 0.0f32;
        for ni in 0..n {
            let base = (ni * c + ci) * hw;
            let s: f32 = data[base..base + hw].iter().sum();
            acc += s;
        }
        acc
    });
    Tensor::from_vec(vals, &[c])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax_rows(&x);
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Larger logit, larger probability.
        assert!(p.at(&[0, 2]) > p.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let y = x.add_scalar(100.0);
        assert!(softmax_rows(&x).approx_eq(&softmax_rows(&y), 1e-5));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.0], &[2, 2]);
        let a = log_softmax_rows(&x);
        let b = softmax_rows(&x).map(f32::ln);
        assert!(a.approx_eq(&b, 1e-5));
    }

    #[test]
    fn softmax_survives_extreme_logits() {
        let x = Tensor::from_vec(vec![1000.0, 0.0, -1000.0], &[1, 3]);
        let p = softmax_rows(&x);
        assert!(p.all_finite());
        assert!((p.at(&[0, 0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_ties_to_lowest() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0, 0.0, 0.0], &[2, 3]);
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }

    #[test]
    fn sum_rows_and_channels() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(sum_rows(&m).data(), &[4.0, 6.0]);
        let t = Tensor::ones(&[2, 3, 2, 2]);
        assert_eq!(sum_channels(&t).data(), &[8.0, 8.0, 8.0]);
    }

    /// Parallel reductions are bit-identical at 1 and 4 threads.
    #[test]
    fn parallel_matches_serial_bitexact() {
        let logits = Tensor::from_vec(
            (0..64 * 10).map(|i| ((i * 37) % 23) as f32 * 0.3 - 3.0).collect(),
            &[64, 10],
        );
        let nchw = Tensor::from_vec(
            (0..4 * 6 * 5 * 5).map(|i| (i as f32) * 0.01 - 1.5).collect(),
            &[4, 6, 5, 5],
        );
        let run = || {
            (
                softmax_rows(&logits),
                log_softmax_rows(&logits),
                sum_channels(&nchw),
            )
        };
        let serial = crate::par::with_threads(1, run);
        let parallel = crate::par::with_threads(4, run);
        assert_eq!(serial.0.data(), parallel.0.data());
        assert_eq!(serial.1.data(), parallel.1.data());
        assert_eq!(serial.2.data(), parallel.2.data());
    }
}
