//! Dumps the kernel selector's routing table over a canonical shape
//! sweep — one line per `(op, m, k, n)` with the chosen routine and
//! blueprint, plus the bit-serial cost-table decisions.
//!
//! The dump is a pure function of the loaded profile (see
//! `CSQ_KERNEL_PROFILE`): `scripts/check.sh` runs it twice and diffs
//! the output to gate selector determinism.
//!
//! ```text
//! cargo run -p csq-tensor --bin selector_dump
//! ```

use csq_tensor::selector::{self, bit_serial, FloatOp};

/// Canonical GEMM extents: degenerate axes, primes, register-block
/// edges and the hot serving/training shapes.
const EXTENTS: &[usize] = &[1, 2, 4, 7, 8, 15, 16, 17, 32, 64, 128, 256];

fn main() {
    match selector::profile_status() {
        Ok(Some(p)) => println!("# profile: loaded ({} entries)", p.len()),
        Ok(None) => println!("# profile: none (static table)"),
        Err(e) => println!("# profile: rejected ({e}); static table"),
    }

    println!("# op m k n -> routine blueprint");
    for op in selector::FLOAT_OPS.iter().copied() {
        for &m in EXTENTS {
            for &k in EXTENTS {
                for &n in EXTENTS {
                    // Matvec is n==1 by construction; skip the rest of
                    // the n axis so the sweep stays compact.
                    if op == FloatOp::Matvec && n != 1 {
                        continue;
                    }
                    let sel = selector::select(op, m, k, n);
                    println!(
                        "{} {m} {k} {n} -> {} {}",
                        op.name(),
                        sel.routine.name(),
                        sel.blueprint.name
                    );
                }
            }
        }
    }

    println!("# bit_serial: op batch_rows out_rows k words passes -> choice blueprint");
    for op in [
        bit_serial::BitSerialOp::Conv2d,
        bit_serial::BitSerialOp::Linear,
    ] {
        for &batch_rows in &[1usize, 4, 64, 256] {
            for &out_rows in &[1usize, 16, 64] {
                for &k in &[9usize, 64, 576] {
                    for &passes in &[0usize, 2, 4, 8] {
                        let shape = bit_serial::BitSerialShape {
                            batch_rows,
                            out_rows,
                            k,
                            words: k.div_ceil(64),
                            passes,
                        };
                        let sel = bit_serial::select(op, &shape);
                        let choice = match sel.choice {
                            bit_serial::BitSerialChoice::Bitplane(r) => match r {
                                bit_serial::BitSerialRoutine::PanelGemm => "bitplane/panel_gemm",
                                bit_serial::BitSerialRoutine::Vecmat => "bitplane/vecmat",
                            },
                            bit_serial::BitSerialChoice::DenseInteger => "dense_integer",
                        };
                        println!(
                            "{:?} {batch_rows} {out_rows} {k} {} {passes} -> {choice} {}",
                            op,
                            k.div_ceil(64),
                            sel.blueprint.name
                        );
                    }
                }
            }
        }
    }
}
