//! Fused-transpose GEMM routines for the gradient shapes.
//!
//! `matmul_tn` (`C = Aᵀ·B`, the weight-gradient shape) and `matmul_nt`
//! (`C = A·Bᵀ`, the input-gradient shape) never materialize the
//! transpose; both run simple row loops per
//! [`crate::blueprint::ROWDOT_F32`].
//!
//! The TN kernel keeps a per-element `0.0` skip on the left operand:
//! its main caller is the bit-plane adjoint where entire planes are
//! gated to zero, so the branch pays for itself there. The skip is
//! bit-exact: an accumulator seeded from `+0.0` is never `-0.0` (IEEE
//! round-to-nearest only yields `-0.0` from `(-0)+(-0)`), so dropping a
//! `±0.0` product never changes the stored value.

use crate::par;

/// `out[i0..i0+rows] = a[i0..i0+rows] · bᵀ` for `b` of shape `[n, k]`,
/// serial; `out` holds exactly `rows * n` elements (overwritten).
pub(crate) fn matmul_nt_rows(
    a: &[f32],
    b: &[f32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    for i in 0..rows {
        let a_row = &a[(i0 + i) * k..(i0 + i + 1) * k];
        let c_row = &mut out[i * n..(i + 1) * n];
        for (j, c) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *c = acc;
        }
    }
}

/// `out[i0..i0+rows] += (aᵀ)[i0..i0+rows] · b` for `a` of shape `[k, m]`,
/// serial, `out` pre-zeroed. Reads of `a` are column-strided, but the
/// `0.0` skip (bit-plane sparsity) makes this the cheaper layout for the
/// quantized adjoint. Accumulation per element is `p`-ascending — the
/// same order as the historical `p`-outer serial kernel.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    i0: usize,
    rows: usize,
    k: usize,
    m: usize,
    n: usize,
    out: &mut [f32],
) {
    for i in 0..rows {
        let c_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let a_pi = a[p * m + i0 + i];
            if a_pi == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *c += a_pi * bv;
            }
        }
    }
}

/// Row-parallel `out = aᵀ · b` (`a` `[k, m]`, `b` `[k, n]`, `out` a
/// pre-zeroed `m * n` buffer).
pub fn matmul_tn(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    let rows_per_task = par::chunk_len(m, 2 * k * n);
    par::par_chunks_mut(out, rows_per_task * n.max(1), |_t, start, chunk| {
        matmul_tn_rows(a, b, start / n, chunk.len() / n, k, m, n, chunk);
    });
}

/// Row-parallel `out = a · bᵀ` (`a` `[m, k]`, `b` `[n, k]`, `out` an
/// `m * n` buffer, fully overwritten).
pub fn matmul_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    let rows_per_task = par::chunk_len(m, 2 * k * n);
    par::par_chunks_mut(out, rows_per_task * n.max(1), |_t, start, chunk| {
        matmul_nt_rows(a, b, start / n, chunk.len() / n, k, n, chunk);
    });
}

/// Serial `out = a · bᵀ` into a caller-provided buffer (`a` `[m, k]`,
/// `b` `[n, k]`, `out` `m * n`).
pub fn matmul_nt_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    matmul_nt_rows(a, b, 0, m, k, n, out);
}

/// Serial `out = aᵀ · b` into a caller-provided buffer (`a` `[k, m]`,
/// `b` `[k, n]`, `out` `m * n`, pre-zeroed here).
pub fn matmul_tn_into(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    matmul_tn_rows(a, b, 0, m, k, m, n, out);
}
