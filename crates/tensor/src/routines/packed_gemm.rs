//! Packed-panel GEMM: both operands repacked into register-block
//! strips, a full-depth `MR × NR` micro-kernel, and pack-time zero-row
//! skip flags.
//!
//! Layout per [`crate::blueprint::PANEL_F32`]:
//!
//! * **B** is packed once per call into `NR`-wide column strips, depth
//!   major (`strip[p·NR + j]`), edge strips zero-padded — so the
//!   micro-kernel streams one contiguous panel per output tile.
//! * **A** is packed per parallel task into `MR`-tall row strips, depth
//!   major (`strip[p·MR + r]`), edge strips zero-padded. While packing,
//!   depth rows whose `MR` values are all zero are flagged for free.
//! * The micro-kernel holds an `MR × NR` block of accumulators in
//!   registers across the **entire** depth `k` (the blueprint's
//!   `kc = 0` convention): each output element accumulates its products
//!   in strictly `p`-ascending order from `0.0`, exactly like the
//!   blocked kernel — packing reorders reads, never the accumulation —
//!   so this routine is bit-identical to [`super::blocked`] at any
//!   thread count.
//!
//! # Zero-skip (the bit-plane adjoint fast path)
//!
//! The materialized bit-plane matrices the CSQ adjoint multiplies are
//! mostly zero rows (gated planes). A strip whose packing pass found
//! skippable depth rows runs a variant of the micro-kernel that tests
//! one flag bit per depth row (one branch per `MR × NR` block, not per
//! element); fully dense strips run the branch-free kernel. Skipping is
//! bit-exact: every skipped product is `±0.0`, the accumulator is
//! seeded from `+0.0` and can never become `-0.0` under
//! round-to-nearest (only `(-0)+(-0)` yields `-0`), and `x ± 0.0 == x`
//! for every other value — so the skip variant returns bit-identical
//! results to the dense one (as the dense kernels throughout this
//! crate, it assumes finite operands).

use crate::par;

/// Micro-kernel rows (must match [`PANEL_F32`]; checked in tests).
pub(crate) const MR: usize = 4;
/// Micro-kernel columns (must match [`PANEL_F32`]; checked in tests).
pub(crate) const NR: usize = 8;

/// Left-operand rows packed into `MR`-tall depth-major strips, plus the
/// free zero-row flags the packing pass collected.
pub(crate) struct PackedRows {
    /// `strips × k × MR` floats, strip-major then depth-major.
    pub(crate) data: Vec<f32>,
    /// `strips × ⌈k/64⌉` bitset words; bit `p % 64` of word
    /// `strip·words + p/64` is set when all `MR` values at depth `p`
    /// are zero.
    pub(crate) skip: Vec<u64>,
    /// Per strip: number of skippable depth rows (0 ⇒ branch-free path).
    pub(crate) skippable: Vec<u32>,
    /// Number of `MR`-tall strips.
    pub(crate) strips: usize,
    /// Bitset words per strip.
    pub(crate) skip_words: usize,
}

/// Packs `rows` rows of `a` (shape `[·, k]`, starting at row `i0`) into
/// `MR`-tall strips, recording zero-row flags as a side effect of the
/// copy. Edge strips are padded with zero rows, which are never written
/// back.
pub(crate) fn pack_rows(a: &[f32], i0: usize, rows: usize, k: usize) -> PackedRows {
    let strips = rows.div_ceil(MR);
    let skip_words = k.div_ceil(64);
    let mut data = vec![0.0f32; strips * k * MR];
    let mut skip = vec![0u64; strips * skip_words];
    let mut skippable = vec![0u32; strips];
    for s in 0..strips {
        let r0 = s * MR;
        let h = MR.min(rows - r0);
        let dst = &mut data[s * k * MR..(s + 1) * k * MR];
        let flags = &mut skip[s * skip_words..(s + 1) * skip_words];
        let mut count = 0u32;
        for p in 0..k {
            let mut all_zero = true;
            for r in 0..h {
                let v = a[(i0 + r0 + r) * k + p];
                dst[p * MR + r] = v;
                all_zero &= v == 0.0;
            }
            if all_zero {
                flags[p / 64] |= 1u64 << (p % 64);
                count += 1;
            }
        }
        skippable[s] = count;
    }
    PackedRows {
        data,
        skip,
        skippable,
        strips,
        skip_words,
    }
}

/// Packs `b` (`[k, n]`) into `NR`-wide depth-major column strips, edge
/// strips zero-padded to `NR`.
pub(crate) fn pack_cols(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let strips = n.div_ceil(NR);
    let mut packed = vec![0.0f32; strips * k * NR];
    for s in 0..strips {
        let j0 = s * NR;
        let w = NR.min(n - j0);
        let dst = &mut packed[s * k * NR..(s + 1) * k * NR];
        for p in 0..k {
            dst[p * NR..p * NR + w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
        }
    }
    packed
}

/// Branch-free `MR × NR` register micro-kernel: `acc += Aᵖ ⊗ Bᵖ` for
/// every depth row, `p`-ascending. `b` is read at `b_stride` floats per
/// depth row (`NR` for packed strips, the panel width for the fused
/// conv), with at least `NR` valid floats per row.
#[inline]
pub(crate) fn microkernel(
    a_strip: &[f32],
    b: &[f32],
    k: usize,
    b_stride: usize,
    acc: &mut [[f32; NR]; MR],
) {
    for p in 0..k {
        let ar: &[f32] = &a_strip[p * MR..p * MR + MR];
        let br: &[f32] = &b[p * b_stride..p * b_stride + NR];
        for r in 0..MR {
            let av = ar[r];
            for (c, &bv) in acc[r].iter_mut().zip(br.iter()) {
                *c += av * bv;
            }
        }
    }
}

/// The skip variant: identical accumulation, but depth rows flagged
/// all-zero at pack time are skipped (one branch per depth row).
#[inline]
pub(crate) fn microkernel_skip(
    a_strip: &[f32],
    flags: &[u64],
    b: &[f32],
    k: usize,
    b_stride: usize,
    acc: &mut [[f32; NR]; MR],
) {
    for p in 0..k {
        if flags[p / 64] >> (p % 64) & 1 == 1 {
            continue;
        }
        let ar: &[f32] = &a_strip[p * MR..p * MR + MR];
        let br: &[f32] = &b[p * b_stride..p * b_stride + NR];
        for r in 0..MR {
            let av = ar[r];
            for (c, &bv) in acc[r].iter_mut().zip(br.iter()) {
                *c += av * bv;
            }
        }
    }
}

/// Runs every strip of `ap` against every packed column strip of
/// `bpack`, writing the `rows × n` result block (serial; callers
/// parallelize by carving disjoint row ranges).
pub(crate) fn gemm_strips(
    ap: &PackedRows,
    bpack: &[f32],
    rows: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), rows * n);
    let bstrips = n.div_ceil(NR);
    for s in 0..ap.strips {
        let h = MR.min(rows - s * MR);
        let a_strip = &ap.data[s * k * MR..(s + 1) * k * MR];
        let flags = &ap.skip[s * ap.skip_words..(s + 1) * ap.skip_words];
        let dense = ap.skippable[s] == 0;
        for bs in 0..bstrips {
            let j0 = bs * NR;
            let w = NR.min(n - j0);
            let b_strip = &bpack[bs * k * NR..(bs + 1) * k * NR];
            let mut acc = [[0.0f32; NR]; MR];
            if dense {
                microkernel(a_strip, b_strip, k, NR, &mut acc);
            } else {
                microkernel_skip(a_strip, flags, b_strip, k, NR, &mut acc);
            }
            for (r, acc_row) in acc.iter().enumerate().take(h) {
                let dst = &mut out[(s * MR + r) * n + j0..(s * MR + r) * n + j0 + w];
                dst.copy_from_slice(&acc_row[..w]);
            }
        }
    }
}

/// Row-parallel packed-panel `out = a · b` (`a` `[m, k]`, `b` `[k, n]`,
/// `out` an `m * n` buffer, fully overwritten). B is packed once up
/// front; each task packs its own row strips (collecting zero-row skip
/// flags for free) and runs the register micro-kernel. Chunk boundaries
/// are the same shape-only function the blocked kernel uses, so results
/// are bit-identical at any thread count.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let bpack = pack_cols(b, k, n);
    // Round the per-task row count up to a whole number of MR-tall
    // strips: a task owning fewer rows than MR would pad its strip with
    // zero rows and burn micro-kernel flops on them. Still a shape-only
    // function, so chunk boundaries (and results) are thread-invariant.
    let rows_per_task = par::chunk_len(m, 2 * k * n).next_multiple_of(MR);
    par::par_chunks_mut(out, rows_per_task * n, |_t, start, chunk| {
        let i0 = start / n;
        let rows = chunk.len() / n;
        let ap = pack_rows(a, i0, rows, k);
        gemm_strips(&ap, &bpack, rows, k, n, chunk);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::PANEL_F32;

    #[test]
    fn register_block_matches_blueprint() {
        assert_eq!(MR, PANEL_F32.mr);
        assert_eq!(NR, PANEL_F32.nr);
    }

    #[test]
    fn packing_flags_zero_rows() {
        // 4 rows × 3 depth; depth 1 is zero in every row.
        let a = [1.0, 0.0, 2.0, 3.0, 0.0, 4.0, 5.0, 0.0, 6.0, 7.0, 0.0, 8.0];
        let ap = pack_rows(&a, 0, 4, 3);
        assert_eq!(ap.strips, 1);
        assert_eq!(ap.skippable[0], 1);
        assert_eq!(ap.skip[0] & 0b111, 0b010);
        // Depth-major layout: depth 0 holds column 0 of every row.
        assert_eq!(&ap.data[0..4], &[1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn skip_variant_matches_dense_bit_exactly() {
        // A strip with zero depth rows, random-ish B.
        let k = 70usize;
        let a: Vec<f32> = (0..MR * k)
            .map(|i| {
                if (i / MR).is_multiple_of(3) {
                    0.0
                } else {
                    (i as f32).sin()
                }
            })
            .collect();
        // Re-layout row-major for pack_rows: a_rm[r][p].
        let mut a_rm = vec![0.0f32; MR * k];
        for p in 0..k {
            for r in 0..MR {
                a_rm[r * k + p] = a[p * MR + r];
            }
        }
        let ap = pack_rows(&a_rm, 0, MR, k);
        assert!(ap.skippable[0] > 0);
        let b: Vec<f32> = (0..k * NR).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut dense = [[0.0f32; NR]; MR];
        let mut skip = [[0.0f32; NR]; MR];
        microkernel(&ap.data, &b, k, NR, &mut dense);
        microkernel_skip(&ap.data, &ap.skip, &b, k, NR, &mut skip);
        assert_eq!(dense, skip);
    }
}
