//! Im2col-fused convolution: column panels streamed straight through
//! the packed GEMM micro-kernel.
//!
//! The materialized conv path lowers one sample to a full
//! `[kdim, OH·OW]` column matrix in scratch, then multiplies. This
//! routine never builds that matrix: it gathers `nc` output positions
//! at a time into a small `[kdim, nc]` panel
//! ([`crate::blueprint::COLSTREAM_F32`]), runs the weight strips ×
//! panel sub-strips through the register micro-kernel, and moves to the
//! next panel — the workspace shrinks from `kdim · OH·OW` floats to
//! `kdim · nc`, and panel data is still hot in cache when the
//! micro-kernel reads it.
//!
//! The weight matrix is packed once per conv call (outside the
//! per-sample fan-out) with [`super::packed_gemm::pack_rows`], so the
//! pack-time zero-row skip flags apply here too. Every output element
//! accumulates its `kdim` products in `p`-ascending order from `0.0` —
//! the identical order to the materialized path — so the two conv
//! routines are bit-identical at any thread count.

use super::packed_gemm::{microkernel, microkernel_skip, PackedRows, MR, NR};
use crate::conv::ConvSpec;

/// Streamed column-panel width (`COLSTREAM_F32.nc`; asserted in tests).
pub(crate) const NC: usize = 64;

/// Gathers im2col columns `[s0, s0 + count)` of one `[C, H, W]` sample
/// into a `[kdim, NC]` row-major panel; columns past `count` are
/// zeroed so every `NR`-wide sub-strip is fully initialized.
#[allow(clippy::too_many_arguments)]
fn im2col_panel(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: ConvSpec,
    s0: usize,
    count: usize,
    panel: &mut [f32],
) {
    let k = spec.kernel;
    let ow = spec.out_size(w);
    debug_assert_eq!(panel.len(), c * k * k * NC);
    let mut row = 0usize;
    for ci in 0..c {
        let chan = &input[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            for kj in 0..k {
                let dst = &mut panel[row * NC..(row + 1) * NC];
                for (idx, v) in dst.iter_mut().enumerate().take(count) {
                    let s = s0 + idx;
                    let (oi, oj) = (s / ow, s % ow);
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                    *v = if ii >= 0 && ii < h as isize && jj >= 0 && jj < w as isize {
                        chan[ii as usize * w + jj as usize]
                    } else {
                        0.0
                    };
                }
                for v in &mut dst[count..] {
                    *v = 0.0;
                }
                row += 1;
            }
        }
    }
}

/// Convolves one `[C, H, W]` sample against the pre-packed weight
/// strips, writing its `[oc, OH·OW]` output block. `panel` is a
/// caller-pooled `kdim · NC` workspace. Serial — the conv entry point
/// parallelizes over samples, exactly like the materialized path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_sample(
    sample: &[f32],
    ic: usize,
    h: usize,
    w: usize,
    spec: ConvSpec,
    wpack: &PackedRows,
    oc: usize,
    kdim: usize,
    panel: &mut [f32],
    out_s: &mut [f32],
) {
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let n_spatial = oh * ow;
    debug_assert_eq!(out_s.len(), oc * n_spatial);
    for s0 in (0..n_spatial).step_by(NC) {
        let pc = NC.min(n_spatial - s0);
        im2col_panel(sample, ic, h, w, spec, s0, pc, panel);
        let subs = pc.div_ceil(NR);
        for strip in 0..wpack.strips {
            let hrows = MR.min(oc - strip * MR);
            let a_strip = &wpack.data[strip * kdim * MR..(strip + 1) * kdim * MR];
            let flags = &wpack.skip[strip * wpack.skip_words..(strip + 1) * wpack.skip_words];
            let dense = wpack.skippable[strip] == 0;
            for sub in 0..subs {
                let j0 = sub * NR;
                let wcols = NR.min(pc - j0);
                let b = &panel[j0..];
                let mut acc = [[0.0f32; NR]; MR];
                if dense {
                    microkernel(a_strip, b, kdim, NC, &mut acc);
                } else {
                    microkernel_skip(a_strip, flags, b, kdim, NC, &mut acc);
                }
                for (r, acc_row) in acc.iter().enumerate().take(hrows) {
                    let base = (strip * MR + r) * n_spatial + s0 + j0;
                    out_s[base..base + wcols].copy_from_slice(&acc_row[..wcols]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blueprint::COLSTREAM_F32;

    #[test]
    fn panel_width_matches_blueprint() {
        assert_eq!(NC, COLSTREAM_F32.nc);
        assert_eq!(MR, COLSTREAM_F32.mr);
        assert_eq!(NR, COLSTREAM_F32.nr);
    }
}
