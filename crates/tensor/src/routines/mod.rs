//! Concrete kernel routines behind the shape-keyed selector.
//!
//! Each routine is one implementation strategy for a GEMM-shaped
//! problem, tiled per its [`Blueprint`](crate::blueprint::Blueprint):
//!
//! * [`packed_gemm`] — packed-panel GEMM with a register micro-kernel
//!   and pack-time zero-row skip flags (large multi-row `matmul`).
//! * [`blocked`] — the historical unpacked `kc`-blocked loop (small
//!   problems where packing overhead dominates).
//! * [`tall_skinny`] — the fused-transpose gradient kernels
//!   (`matmul_tn` / `matmul_nt`), with the per-element zero skip the
//!   bit-plane adjoint relies on.
//! * [`vecmat`] — matrix×vector and vector×matrix (batch-1 inference).
//! * [`im2col_fused`] — convolution that streams im2col column panels
//!   straight through the GEMM micro-kernel without materializing the
//!   full column matrix.
//!
//! Every routine upholds the workspace determinism contract: each
//! output element accumulates its products in strictly `p`-ascending
//! order starting from `0.0`, parallel work is dispatched through
//! [`crate::par`] with shape-only chunk boundaries, and tasks write
//! disjoint output ranges. Routines are therefore bit-identical to one
//! another (and to the historical kernels) on the same operands at any
//! thread count — the selector is free to pick any of them on latency
//! grounds alone.

pub mod blocked;
pub mod im2col_fused;
pub mod packed_gemm;
pub mod tall_skinny;
pub mod vecmat;

/// Identity of one concrete routine: what the selector picks, what the
/// profiler tags samples with, and what autotune profiles name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutineKind {
    /// Packed-panel register-tiled GEMM ([`packed_gemm`]).
    PackedPanel,
    /// Unpacked `kc`-blocked row loop ([`blocked`]).
    Blocked,
    /// Fused-transpose `Aᵀ·B` gradient kernel ([`tall_skinny`]).
    TallSkinnyTn,
    /// Fused-transpose `A·Bᵀ` gradient kernel ([`tall_skinny`]).
    TallSkinnyNt,
    /// Matrix×vector, row-parallel dot products ([`vecmat`]).
    MatvecRows,
    /// Vector×matrix, column-chunk parallel ([`vecmat`]).
    VecmatCols,
    /// Column-panel streaming im2col convolution ([`im2col_fused`]).
    Im2colFused,
    /// Materialized im2col convolution (historical path).
    Im2colGemm,
}

impl RoutineKind {
    /// Stable name used in profiler tags, bench JSON, and autotune
    /// profile files.
    pub fn name(self) -> &'static str {
        match self {
            RoutineKind::PackedPanel => "packed_panel",
            RoutineKind::Blocked => "blocked",
            RoutineKind::TallSkinnyTn => "tall_skinny_tn",
            RoutineKind::TallSkinnyNt => "tall_skinny_nt",
            RoutineKind::MatvecRows => "matvec_rows",
            RoutineKind::VecmatCols => "vecmat_cols",
            RoutineKind::Im2colFused => "im2col_fused",
            RoutineKind::Im2colGemm => "im2col_gemm",
        }
    }

    /// Parses a stable routine name (autotune profile loading).
    pub fn parse(name: &str) -> Option<RoutineKind> {
        ALL.iter().copied().find(|r| r.name() == name)
    }
}

/// Every routine, for profile validation and the selector dump.
pub static ALL: &[RoutineKind] = &[
    RoutineKind::PackedPanel,
    RoutineKind::Blocked,
    RoutineKind::TallSkinnyTn,
    RoutineKind::TallSkinnyNt,
    RoutineKind::MatvecRows,
    RoutineKind::VecmatCols,
    RoutineKind::Im2colFused,
    RoutineKind::Im2colGemm,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for r in ALL {
            assert_eq!(RoutineKind::parse(r.name()), Some(*r));
        }
        assert_eq!(RoutineKind::parse("bogus"), None);
    }
}
