//! The historical unpacked `kc`-blocked GEMM loop.
//!
//! This is the kernel `Tensor::matmul` shipped with before the packed
//! routines existed, kept as the small-problem fallback: no packing, no
//! register tiling, just a stripe of the right operand held hot while a
//! task sweeps its rows ([`crate::blueprint::BLOCKED_KC64`]). The
//! `kc` blocking reorders *reads* only — each output element still
//! accumulates its products in strictly `p`-ascending order from `0.0`,
//! so this routine is bit-identical to every other GEMM routine here.

use crate::blueprint::BLOCKED_KC64;
use crate::par;

/// `out[i0..i0+rows] += a[i0..i0+rows] · b`, serial, with `out` holding
/// exactly `rows * n` pre-zeroed elements. Accumulation per element is
/// `p`-ascending regardless of blocking.
pub(crate) fn matmul_rows(
    a: &[f32],
    b: &[f32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let kc = BLOCKED_KC64.kc;
    for p0 in (0..k).step_by(kc) {
        let pe = (p0 + kc).min(k);
        for i in 0..rows {
            let a_row = &a[(i0 + i) * k..(i0 + i + 1) * k];
            let c_row = &mut out[i * n..(i + 1) * n];
            for p in p0..pe {
                let a_ip = a_row[p];
                let b_row = &b[p * n..(p + 1) * n];
                for (c, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *c += a_ip * bv;
                }
            }
        }
    }
}

/// Row-parallel `out = a · b` (`a` `[m, k]`, `b` `[k, n]`, `out` a
/// pre-zeroed `m * n` buffer). Chunk boundaries depend on shape only,
/// so results are bit-identical at any thread count.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    let rows_per_task = par::chunk_len(m, 2 * k * n);
    par::par_chunks_mut(out, rows_per_task * n.max(1), |_t, start, chunk| {
        matmul_rows(a, b, start / n, chunk.len() / n, k, n, chunk);
    });
}

/// Serial `out = a · b` into a caller-provided buffer (`a` `[m, k]`,
/// `b` `[k, n]`, `out` `m * n`). Used inside already-parallel regions
/// (per-sample conv tasks) where nesting another fan-out would only
/// oversubscribe.
pub fn matmul_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    matmul_rows(a, b, 0, m, k, n, out);
}
