//! Matrix×vector and vector×matrix routines (batch-1 inference).
//!
//! Two shapes, two parallel axes (per
//! [`crate::blueprint::VECMAT_F32`]):
//!
//! * [`matvec_rows`] — `out = A · v`: every output element is an
//!   independent `k`-ascending dot product, so tasks carve output rows.
//! * [`vecmat_cols`] — `out = v · B` (a batch-1 `matmul`): outputs
//!   share the sweep over `v`, so tasks carve output *columns* and each
//!   chunk runs the `p`-outer loop locally.
//!
//! Both orders match the dense GEMM routines element-for-element, so
//! results are bit-identical to routing the same shape through
//! `matmul`.

use crate::par;

/// Row-parallel `out = a · v` (`a` `[m, k]`, `v` `[k]`, `out` `m`,
/// fully overwritten). Each element is a `k`-ascending dot from `0.0` —
/// the same order as one output element of the NT row kernel.
pub fn matvec_rows(a: &[f32], v: &[f32], m: usize, k: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m);
    let rows_per_task = par::chunk_len(m, 2 * k);
    par::par_chunks_mut(out, rows_per_task, |_t, start, chunk| {
        matvec_into(a, v, start, chunk.len(), k, chunk);
    });
}

/// Serial matvec over a row range: `out[i] = a[start+i] · v`.
pub fn matvec_into(a: &[f32], v: &[f32], start: usize, rows: usize, k: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), rows);
    for (i, o) in out.iter_mut().enumerate() {
        let row = &a[(start + i) * k..(start + i + 1) * k];
        let mut acc = 0.0f32;
        for (av, bv) in row.iter().zip(v.iter()) {
            acc += av * bv;
        }
        *o = acc;
    }
}

/// Column-parallel `out = v · b` (`v` `[k]`, `b` `[k, n]`, `out` a
/// pre-zeroed `n` buffer): the batch-1 case of `matmul`. Each chunk
/// runs the `p`-outer sweep locally, so every element accumulates in
/// `p`-ascending order — identical to the row kernels on `m = 1`.
pub fn vecmat_cols(v: &[f32], b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), n);
    let cols_per_task = par::chunk_len(n, 2 * k);
    par::par_chunks_mut(out, cols_per_task, |_t, start, chunk| {
        for (p, &av) in v.iter().enumerate().take(k) {
            let b_row = &b[p * n + start..p * n + start + chunk.len()];
            for (c, &bv) in chunk.iter_mut().zip(b_row.iter()) {
                *c += av * bv;
            }
        }
    });
}
