//! 2-D convolution via im2col / col2im, with exact adjoints.
//!
//! Layouts follow the usual deep-learning conventions:
//!
//! * activations: `[N, C, H, W]` (row-major, so `W` is innermost)
//! * weights: `[OC, IC, KH, KW]`
//!
//! The forward pass lowers each sample to a `[IC·KH·KW, OH·OW]` column
//! matrix and multiplies by the `[OC, IC·KH·KW]` weight matrix; the
//! backward pass is the exact transpose of that linear map (col2im), so
//! gradients are exact to floating-point rounding — there is no
//! approximation anywhere, which is what the CSQ training pipeline
//! requires.

use crate::Tensor;

/// Geometry of a 2-D convolution: kernel size, stride and zero padding.
///
/// # Example
///
/// ```
/// use csq_tensor::conv::ConvSpec;
/// let spec = ConvSpec::new(3, 1, 1); // 3x3, stride 1, "same" padding
/// assert_eq!(spec.out_size(32), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl ConvSpec {
    /// Creates a spec with a square kernel.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        ConvSpec {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial extent for an input extent.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn out_size(&self, in_size: usize) -> usize {
        let padded = in_size + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "padded input ({padded}) smaller than kernel ({})",
            self.kernel
        );
        (padded - self.kernel) / self.stride + 1
    }
}

/// Lowers one `[C, H, W]` sample (given as a flat slice) to a column matrix
/// `[C·KH·KW, OH·OW]` stored row-major in `cols`.
fn im2col_sample(
    input: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: ConvSpec,
    cols: &mut [f32],
) {
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let k = spec.kernel;
    let n_spatial = oh * ow;
    debug_assert_eq!(cols.len(), c * k * k * n_spatial);
    let mut row = 0usize;
    for ci in 0..c {
        let chan = &input[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            for kj in 0..k {
                let dst = &mut cols[row * n_spatial..(row + 1) * n_spatial];
                let mut idx = 0usize;
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        for v in &mut dst[idx..idx + ow] {
                            *v = 0.0;
                        }
                        idx += ow;
                        continue;
                    }
                    let src_row = &chan[ii as usize * w..(ii as usize + 1) * w];
                    for oj in 0..ow {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        dst[idx] = if jj < 0 || jj >= w as isize {
                            0.0
                        } else {
                            src_row[jj as usize]
                        };
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Adjoint of [`im2col_sample`]: scatters a column matrix back into a
/// `[C, H, W]` gradient buffer, accumulating overlaps.
fn col2im_sample(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: ConvSpec,
    grad_input: &mut [f32],
) {
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let k = spec.kernel;
    let n_spatial = oh * ow;
    let mut row = 0usize;
    for ci in 0..c {
        let chan = &mut grad_input[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            for kj in 0..k {
                let src = &cols[row * n_spatial..(row + 1) * n_spatial];
                let mut idx = 0usize;
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        idx += ow;
                        continue;
                    }
                    let dst_row = &mut chan[ii as usize * w..(ii as usize + 1) * w];
                    for oj in 0..ow {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        if jj >= 0 && jj < w as isize {
                            dst_row[jj as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// `input` is `[N, IC, H, W]`, `weight` is `[OC, IC, KH, KW]`; returns
/// `[N, OC, OH, OW]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches, or when the padded input is
/// smaller than the kernel.
pub fn conv2d(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
    assert_eq!(input.rank(), 4, "conv2d input must be NCHW");
    assert_eq!(weight.rank(), 4, "conv2d weight must be [OC, IC, KH, KW]");
    let (n, ic, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (oc, wic, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    assert_eq!(ic, wic, "input/weight channel mismatch");
    assert_eq!(kh, spec.kernel, "weight kernel height mismatch with spec");
    assert_eq!(kw, spec.kernel, "weight kernel width mismatch with spec");

    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let kdim = ic * kh * kw;
    let n_spatial = oh * ow;
    let w_mat = weight.reshape(&[oc, kdim]);

    let mut out = vec![0.0f32; n * oc * n_spatial];
    let mut cols = vec![0.0f32; kdim * n_spatial];
    for ni in 0..n {
        let sample = &input.data()[ni * ic * h * w..(ni + 1) * ic * h * w];
        im2col_sample(sample, ic, h, w, spec, &mut cols);
        let col_t = Tensor::from_vec(cols.clone(), &[kdim, n_spatial]);
        let y = w_mat.matmul(&col_t); // [oc, n_spatial]
        out[ni * oc * n_spatial..(ni + 1) * oc * n_spatial].copy_from_slice(y.data());
    }
    Tensor::from_vec(out, &[n, oc, oh, ow])
}

/// Gradients of [`conv2d`] with respect to its input and weight.
///
/// Returned as `(grad_input, grad_weight)` with the same shapes as `input`
/// and `weight`.
///
/// # Panics
///
/// Panics on shape mismatches between the arguments.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: ConvSpec,
) -> (Tensor, Tensor) {
    let (n, ic, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let oc = weight.dims()[0];
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    assert_eq!(
        grad_output.dims(),
        &[n, oc, oh, ow],
        "grad_output shape mismatch"
    );

    let kdim = ic * spec.kernel * spec.kernel;
    let n_spatial = oh * ow;
    let w_mat = weight.reshape(&[oc, kdim]);

    let mut grad_input = Tensor::zeros(input.dims());
    let mut grad_w_mat = Tensor::zeros(&[oc, kdim]);
    let mut cols = vec![0.0f32; kdim * n_spatial];

    for ni in 0..n {
        let sample = &input.data()[ni * ic * h * w..(ni + 1) * ic * h * w];
        im2col_sample(sample, ic, h, w, spec, &mut cols);
        let col_t = Tensor::from_vec(cols.clone(), &[kdim, n_spatial]);
        let go = Tensor::from_vec(
            grad_output.data()[ni * oc * n_spatial..(ni + 1) * oc * n_spatial].to_vec(),
            &[oc, n_spatial],
        );
        // dW += dY · colᵀ
        grad_w_mat.add_assign_t(&go.matmul_nt(&col_t));
        // dcol = Wᵀ · dY, then scatter back.
        let grad_cols = w_mat.matmul_tn(&go);
        let gi = &mut grad_input.data_mut()[ni * ic * h * w..(ni + 1) * ic * h * w];
        col2im_sample(grad_cols.data(), ic, h, w, spec, gi);
    }
    (grad_input, grad_w_mat.reshape(weight.dims()))
}

/// Reference (direct-loop) convolution used to validate the im2col path.
///
/// Quadratically slower than [`conv2d`]; exposed for tests and benchmarks.
///
/// # Panics
///
/// Panics on the same conditions as [`conv2d`].
pub fn conv2d_naive(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
    let (n, ic, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (oc, _, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    for ni in 0..n {
        for oci in 0..oc {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0f32;
                    for ici in 0..ic {
                        for ki in 0..kh {
                            for kj in 0..kw {
                                let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                                let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                                if ii >= 0 && jj >= 0 && (ii as usize) < h && (jj as usize) < w {
                                    acc += input.at(&[ni, ici, ii as usize, jj as usize])
                                        * weight.at(&[oci, ici, ki, kj]);
                                }
                            }
                        }
                    }
                    out.set(&[ni, oci, oi, oj], acc);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rand_t(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        init::uniform(dims, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn out_size_math() {
        let s = ConvSpec::new(3, 1, 1);
        assert_eq!(s.out_size(32), 32);
        let s = ConvSpec::new(3, 2, 1);
        assert_eq!(s.out_size(32), 16);
        let s = ConvSpec::new(1, 1, 0);
        assert_eq!(s.out_size(7), 7);
        let s = ConvSpec::new(7, 2, 3);
        assert_eq!(s.out_size(224), 112);
    }

    #[test]
    fn conv_matches_naive_stride1() {
        let x = rand_t(&[2, 3, 8, 8], 1);
        let w = rand_t(&[4, 3, 3, 3], 2);
        let spec = ConvSpec::new(3, 1, 1);
        assert!(conv2d(&x, &w, spec).approx_eq(&conv2d_naive(&x, &w, spec), 1e-4));
    }

    #[test]
    fn conv_matches_naive_stride2_no_pad() {
        let x = rand_t(&[1, 2, 9, 9], 3);
        let w = rand_t(&[3, 2, 3, 3], 4);
        let spec = ConvSpec::new(3, 2, 0);
        assert!(conv2d(&x, &w, spec).approx_eq(&conv2d_naive(&x, &w, spec), 1e-4));
    }

    #[test]
    fn conv_1x1_is_channel_mix() {
        let x = rand_t(&[1, 2, 4, 4], 5);
        let w = rand_t(&[3, 2, 1, 1], 6);
        let spec = ConvSpec::new(1, 1, 0);
        assert!(conv2d(&x, &w, spec).approx_eq(&conv2d_naive(&x, &w, spec), 1e-5));
    }

    /// The backward pass must be the exact adjoint of the forward map:
    /// <conv(x, w), gy> == <x, grad_x> + ... checked via directional
    /// finite differences on both arguments.
    #[test]
    fn conv_backward_matches_finite_difference() {
        let x = rand_t(&[1, 2, 5, 5], 7);
        let w = rand_t(&[2, 2, 3, 3], 8);
        let spec = ConvSpec::new(3, 1, 1);
        let gy = rand_t(&[1, 2, 5, 5], 9);
        let (gx, gw) = conv2d_backward(&x, &w, &gy, spec);

        let loss = |x: &Tensor, w: &Tensor| conv2d(x, w, spec).dot(&gy);
        let eps = 1e-2f32;
        // Directional derivative along random directions.
        let dx = rand_t(x.dims(), 10);
        let dw = rand_t(w.dims(), 11);
        let mut xp = x.clone();
        xp.axpy(eps, &dx);
        let mut xm = x.clone();
        xm.axpy(-eps, &dx);
        let num_x = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
        assert!((num_x - gx.dot(&dx)).abs() < 2e-2 * (1.0 + num_x.abs()));

        let mut wp = w.clone();
        wp.axpy(eps, &dw);
        let mut wm = w.clone();
        wm.axpy(-eps, &dw);
        let num_w = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
        assert!((num_w - gw.dot(&dw)).abs() < 2e-2 * (1.0 + num_w.abs()));
    }

    #[test]
    fn conv_backward_strided_adjoint_identity() {
        // <A x, y> == <x, Aᵀ y> where A is conv as a linear map in x.
        let x = rand_t(&[2, 2, 7, 7], 12);
        let w = rand_t(&[3, 2, 3, 3], 13);
        let spec = ConvSpec::new(3, 2, 1);
        let y = conv2d(&x, &w, spec);
        let gy = rand_t(y.dims(), 14);
        let (gx, _) = conv2d_backward(&x, &w, &gy, spec);
        let lhs = y.dot(&gy);
        let rhs = x.dot(&gx);
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_channel_mismatch_panics() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 4, 3, 3]);
        conv2d(&x, &w, ConvSpec::new(3, 1, 1));
    }
}

/// Forward depthwise 2-D convolution: each input channel is convolved
/// with its own single `[KH, KW]` filter (the grouped convolution with
/// `groups == channels` that MobileNet-family models are built from).
///
/// `input` is `[N, C, H, W]`, `weight` is `[C, 1, KH, KW]`; returns
/// `[N, C, OH, OW]`.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn depthwise_conv2d(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
    assert_eq!(input.rank(), 4, "depthwise input must be NCHW");
    assert_eq!(weight.rank(), 4, "depthwise weight must be [C, 1, KH, KW]");
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    assert_eq!(weight.dims()[0], c, "depthwise channel mismatch");
    assert_eq!(weight.dims()[1], 1, "depthwise weight must have one input channel");
    assert_eq!(weight.dims()[2], spec.kernel, "kernel mismatch");
    assert_eq!(weight.dims()[3], spec.kernel, "kernel mismatch");
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let k = spec.kernel;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut oidx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let chan = &input.data()[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
            let filt = &weight.data()[ci * k * k..(ci + 1) * k * k];
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0f32;
                    for ki in 0..k {
                        let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..k {
                            let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                            if jj >= 0 && jj < w as isize {
                                acc += chan[ii as usize * w + jj as usize] * filt[ki * k + kj];
                            }
                        }
                    }
                    out.data_mut()[oidx] = acc;
                    oidx += 1;
                }
            }
        }
    }
    out
}

/// Gradients of [`depthwise_conv2d`] with respect to input and weight,
/// returned as `(grad_input, grad_weight)`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn depthwise_conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: ConvSpec,
) -> (Tensor, Tensor) {
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    assert_eq!(
        grad_output.dims(),
        &[n, c, oh, ow],
        "grad_output shape mismatch"
    );
    let k = spec.kernel;
    let mut grad_input = Tensor::zeros(input.dims());
    let mut grad_weight = Tensor::zeros(weight.dims());
    let mut oidx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let chan_base = (ni * c + ci) * h * w;
            let filt = &weight.data()[ci * k * k..(ci + 1) * k * k];
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = grad_output.data()[oidx];
                    oidx += 1;
                    if g == 0.0 {
                        continue;
                    }
                    for ki in 0..k {
                        let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..k {
                            let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                            if jj < 0 || jj >= w as isize {
                                continue;
                            }
                            let at = chan_base + ii as usize * w + jj as usize;
                            grad_input.data_mut()[at] += g * filt[ki * k + kj];
                            grad_weight.data_mut()[ci * k * k + ki * k + kj] +=
                                g * input.data()[at];
                        }
                    }
                }
            }
        }
    }
    (grad_input, grad_weight)
}

#[cfg(test)]
mod depthwise_tests {
    use super::*;
    use crate::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rand_t(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        init::uniform(dims, -1.0, 1.0, &mut rng)
    }

    /// Depthwise conv equals per-channel 1-channel dense convs.
    #[test]
    fn matches_per_channel_dense_conv() {
        let x = rand_t(&[2, 3, 6, 6], 0);
        let w = rand_t(&[3, 1, 3, 3], 1);
        let spec = ConvSpec::new(3, 1, 1);
        let y = depthwise_conv2d(&x, &w, spec);
        for ci in 0..3 {
            // Slice channel ci of x into a [2,1,6,6] tensor.
            let mut xc = Tensor::zeros(&[2, 1, 6, 6]);
            for ni in 0..2 {
                for i in 0..36 {
                    xc.data_mut()[ni * 36 + i] = x.data()[(ni * 3 + ci) * 36 + i];
                }
            }
            let wc = Tensor::from_vec(
                w.data()[ci * 9..(ci + 1) * 9].to_vec(),
                &[1, 1, 3, 3],
            );
            let yc = conv2d(&xc, &wc, spec);
            for ni in 0..2 {
                for i in 0..36 {
                    let got = y.data()[(ni * 3 + ci) * 36 + i];
                    let want = yc.data()[ni * 36 + i];
                    assert!((got - want).abs() < 1e-4, "ch {ci}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn strided_output_shape() {
        let x = rand_t(&[1, 4, 8, 8], 2);
        let w = rand_t(&[4, 1, 3, 3], 3);
        let y = depthwise_conv2d(&x, &w, ConvSpec::new(3, 2, 1));
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn backward_is_exact_adjoint() {
        let x = rand_t(&[1, 2, 5, 5], 4);
        let w = rand_t(&[2, 1, 3, 3], 5);
        let spec = ConvSpec::new(3, 2, 1);
        let y = depthwise_conv2d(&x, &w, spec);
        let gy = rand_t(y.dims(), 6);
        let (gx, gw) = depthwise_conv2d_backward(&x, &w, &gy, spec);
        // <Ax, y> == <x, A'y> in both arguments.
        assert!((y.dot(&gy) - x.dot(&gx)).abs() < 1e-3);
        // Weight gradient via finite differences along a direction.
        let dw = rand_t(w.dims(), 7);
        let eps = 1e-2f32;
        let mut wp = w.clone();
        wp.axpy(eps, &dw);
        let mut wm = w.clone();
        wm.axpy(-eps, &dw);
        let num = (depthwise_conv2d(&x, &wp, spec).dot(&gy)
            - depthwise_conv2d(&x, &wm, spec).dot(&gy))
            / (2.0 * eps);
        assert!((num - gw.dot(&dw)).abs() < 2e-2 * (1.0 + num.abs()));
    }

    #[test]
    #[should_panic(expected = "depthwise channel mismatch")]
    fn channel_mismatch_panics() {
        depthwise_conv2d(
            &Tensor::zeros(&[1, 3, 4, 4]),
            &Tensor::zeros(&[2, 1, 3, 3]),
            ConvSpec::new(3, 1, 1),
        );
    }
}
