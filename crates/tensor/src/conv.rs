//! 2-D convolution via im2col / col2im, with exact adjoints.
//!
//! Layouts follow the usual deep-learning conventions:
//!
//! * activations: `[N, C, H, W]` (row-major, so `W` is innermost)
//! * weights: `[OC, IC, KH, KW]`
//!
//! The forward pass lowers each sample to a `[IC·KH·KW, OH·OW]` column
//! matrix and multiplies by the `[OC, IC·KH·KW]` weight matrix; the
//! backward pass is the exact transpose of that linear map (col2im), so
//! gradients are exact to floating-point rounding — there is no
//! approximation anywhere, which is what the CSQ training pipeline
//! requires.
//!
//! Both passes parallelize over samples through [`crate::par`]: each
//! sample writes a disjoint output range, and per-sample weight-gradient
//! partials are folded in ascending sample order, so results are
//! bit-identical at any thread count. Column matrices and gradient
//! partials come from a caller-supplied [`ScratchPool`] so steady-state
//! training allocates nothing per batch ([`conv2d_with_scratch`],
//! [`conv2d_backward_with_scratch`]); the pool-less entry points exist
//! for one-off calls and tests.
//!
//! Like the matrix-product entry points, the conv entry points carry no
//! routine choice of their own: [`crate::selector::select`] picks
//! between the materialized im2col GEMM and the fused column-streaming
//! routine ([`crate::routines::im2col_fused`]) from the per-sample GEMM
//! shape `(OC, IC·KH·KW, OH·OW)`. Both routines accumulate every output
//! element in the identical `p`-ascending order, so the selection is
//! latency-only — results are bit-identical either way.

use crate::par::{self, ScratchPool, SharedSliceMut};
use crate::routines::blocked::matmul_into;
use crate::routines::tall_skinny::{matmul_nt_into, matmul_tn_into};
use crate::routines::{self, im2col_fused, packed_gemm, RoutineKind};
use crate::selector::{self, FloatOp};
use crate::Tensor;

/// Geometry of a 2-D convolution: kernel size, stride and zero padding.
///
/// # Example
///
/// ```
/// use csq_tensor::conv::ConvSpec;
/// let spec = ConvSpec::new(3, 1, 1); // 3x3, stride 1, "same" padding
/// assert_eq!(spec.out_size(32), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl ConvSpec {
    /// Creates a spec with a square kernel.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        ConvSpec {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial extent for an input extent.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn out_size(&self, in_size: usize) -> usize {
        let padded = in_size + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "padded input ({padded}) smaller than kernel ({})",
            self.kernel
        );
        (padded - self.kernel) / self.stride + 1
    }
}

/// Lowers one `[C, H, W]` sample (given as a flat slice) to a column matrix
/// `[C·KH·KW, OH·OW]` stored row-major in `cols`. Every element of `cols`
/// is written, so the buffer's previous contents don't matter.
fn im2col_sample(input: &[f32], c: usize, h: usize, w: usize, spec: ConvSpec, cols: &mut [f32]) {
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let k = spec.kernel;
    let n_spatial = oh * ow;
    debug_assert_eq!(cols.len(), c * k * k * n_spatial);
    let mut row = 0usize;
    for ci in 0..c {
        let chan = &input[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            for kj in 0..k {
                let dst = &mut cols[row * n_spatial..(row + 1) * n_spatial];
                let mut idx = 0usize;
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        for v in &mut dst[idx..idx + ow] {
                            *v = 0.0;
                        }
                        idx += ow;
                        continue;
                    }
                    let src_row = &chan[ii as usize * w..(ii as usize + 1) * w];
                    for oj in 0..ow {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        dst[idx] = if jj < 0 || jj >= w as isize {
                            0.0
                        } else {
                            src_row[jj as usize]
                        };
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Adjoint of [`im2col_sample`]: scatters a column matrix back into a
/// `[C, H, W]` gradient buffer, accumulating overlaps.
fn col2im_sample(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    spec: ConvSpec,
    grad_input: &mut [f32],
) {
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let k = spec.kernel;
    let n_spatial = oh * ow;
    let mut row = 0usize;
    for ci in 0..c {
        let chan = &mut grad_input[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            for kj in 0..k {
                let src = &cols[row * n_spatial..(row + 1) * n_spatial];
                let mut idx = 0usize;
                for oi in 0..oh {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        idx += ow;
                        continue;
                    }
                    let dst_row = &mut chan[ii as usize * w..(ii as usize + 1) * w];
                    for oj in 0..ow {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        if jj >= 0 && jj < w as isize {
                            dst_row[jj as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// `input` is `[N, IC, H, W]`, `weight` is `[OC, IC, KH, KW]`; returns
/// `[N, OC, OH, OW]`. Allocates its column workspace per call; layers
/// that run every step should use [`conv2d_with_scratch`].
///
/// # Panics
///
/// Panics on rank or channel mismatches, or when the padded input is
/// smaller than the kernel.
pub fn conv2d(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
    conv2d_with_scratch(input, weight, spec, &ScratchPool::new())
}

/// [`conv2d`] with a caller-owned [`ScratchPool`] for the per-sample
/// column matrices, so repeated calls (one per training step) reuse the
/// same workspaces instead of reallocating. Samples run in parallel;
/// results are bit-identical at any thread count.
///
/// # Panics
///
/// Same conditions as [`conv2d`].
pub fn conv2d_with_scratch(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    scratch: &ScratchPool,
) -> Tensor {
    conv2d_impl(input, weight, spec, scratch, None)
}

/// [`conv2d_with_scratch`] through an explicitly chosen conv routine,
/// bypassing the selector. Exists for equivalence tests, autotuning,
/// and benches; results are bit-identical across every legal routine.
///
/// # Panics
///
/// Panics on the same conditions as [`conv2d`], or when `routine` is
/// not a conv routine (see [`crate::selector::allowed`]).
pub fn conv2d_with_routine(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    scratch: &ScratchPool,
    routine: RoutineKind,
) -> Tensor {
    assert!(
        selector::allowed(FloatOp::Conv2d).contains(&routine),
        "routine {} is not a conv2d routine",
        routine.name()
    );
    conv2d_impl(input, weight, spec, scratch, Some(routine))
}

fn conv2d_impl(
    input: &Tensor,
    weight: &Tensor,
    spec: ConvSpec,
    scratch: &ScratchPool,
    forced: Option<RoutineKind>,
) -> Tensor {
    assert_eq!(input.rank(), 4, "conv2d input must be NCHW");
    assert_eq!(weight.rank(), 4, "conv2d weight must be [OC, IC, KH, KW]");
    let (n, ic, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (oc, wic, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    assert_eq!(ic, wic, "input/weight channel mismatch");
    assert_eq!(kh, spec.kernel, "weight kernel height mismatch with spec");
    assert_eq!(kw, spec.kernel, "weight kernel width mismatch with spec");

    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let kdim = ic * kh * kw;
    let n_spatial = oh * ow;
    let w_mat = weight.reshape(&[oc, kdim]);
    let wm = w_mat.data();
    let in_data = input.data();
    let sample_in = ic * h * w;

    let sel = match forced {
        Some(routine) => selector::Selection {
            routine,
            blueprint: selector::default_blueprint(routine),
        },
        None => selector::select(FloatOp::Conv2d, oc, kdim, n_spatial),
    };
    let t0 = selector::prof_start();
    let mut out = vec![0.0f32; n * oc * n_spatial];
    // One task per sample; each writes its own [oc, n_spatial] block. The
    // inner GEMM stays serial — the sample fan-out already saturates.
    match sel.routine {
        RoutineKind::Im2colFused => {
            // Weight strips are packed once, outside the fan-out; the
            // packing pass records zero-row skip flags for free.
            let wpack = packed_gemm::pack_rows(wm, 0, oc, kdim);
            par::par_chunks_mut(&mut out, oc * n_spatial, |ni, _start, out_s| {
                let mut panel = scratch.take(kdim * im2col_fused::NC);
                im2col_fused::conv_sample(
                    &in_data[ni * sample_in..(ni + 1) * sample_in],
                    ic,
                    h,
                    w,
                    spec,
                    &wpack,
                    oc,
                    kdim,
                    &mut panel,
                    out_s,
                );
                scratch.give(panel);
            });
        }
        _ => {
            par::par_chunks_mut(&mut out, oc * n_spatial, |ni, _start, out_s| {
                let mut cols = scratch.take(kdim * n_spatial);
                im2col_sample(
                    &in_data[ni * sample_in..(ni + 1) * sample_in],
                    ic,
                    h,
                    w,
                    spec,
                    &mut cols,
                );
                matmul_into(wm, &cols, oc, kdim, n_spatial, out_s);
                scratch.give(cols);
            });
        }
    }
    let bytes = 4 * (n * sample_in + oc * kdim + n * oc * n_spatial) as u64;
    selector::prof_record("conv_im2col", sel, &[n, oc, kdim, n_spatial], bytes, t0);
    Tensor::from_vec(out, &[n, oc, oh, ow])
}

/// Gradients of [`conv2d`] with respect to its input and weight.
///
/// Returned as `(grad_input, grad_weight)` with the same shapes as `input`
/// and `weight`. Allocates workspaces per call; training layers should
/// use [`conv2d_backward_with_scratch`].
///
/// # Panics
///
/// Panics on shape mismatches between the arguments.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: ConvSpec,
) -> (Tensor, Tensor) {
    conv2d_backward_with_scratch(input, weight, grad_output, spec, &ScratchPool::new())
}

/// [`conv2d_backward`] with a caller-owned [`ScratchPool`]. Samples run
/// in parallel: input gradients go to disjoint per-sample ranges, and
/// per-sample weight-gradient partials are folded in ascending sample
/// order — the same accumulation order as a serial loop, hence
/// bit-identical results at any thread count.
///
/// # Panics
///
/// Same conditions as [`conv2d_backward`].
pub fn conv2d_backward_with_scratch(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: ConvSpec,
    scratch: &ScratchPool,
) -> (Tensor, Tensor) {
    let (n, ic, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let oc = weight.dims()[0];
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    assert_eq!(
        grad_output.dims(),
        &[n, oc, oh, ow],
        "grad_output shape mismatch"
    );

    let kdim = ic * spec.kernel * spec.kernel;
    let n_spatial = oh * ow;
    let w_mat = weight.reshape(&[oc, kdim]);
    let wm = w_mat.data();
    let in_data = input.data();
    let go_data = grad_output.data();
    let sample_in = ic * h * w;
    let sample_out = oc * n_spatial;

    // Routine choices for the two per-sample adjoint GEMMs come from the
    // shared selector (shape-only, so every sample — and every thread
    // count — dispatches identically). dW is an NT product
    // `[oc, n_spatial] · [kdim, n_spatial]ᵀ`; dcol is the TN product.
    let gw_sel = selector::select(FloatOp::MatmulNt, oc, n_spatial, kdim);
    let mut grad_input = Tensor::zeros(input.dims());
    let gi = SharedSliceMut::new(grad_input.data_mut());
    let partials = par::par_map_collect(n, |ni| {
        let mut cols = scratch.take(kdim * n_spatial);
        im2col_sample(
            &in_data[ni * sample_in..(ni + 1) * sample_in],
            ic,
            h,
            w,
            spec,
            &mut cols,
        );
        let go = &go_data[ni * sample_out..(ni + 1) * sample_out];
        // dW partial for this sample: dY · colᵀ (fully overwritten).
        let mut gw = scratch.take(oc * kdim);
        match gw_sel.routine {
            // A single-output-channel dW is a matvec over the rows of
            // the column matrix (bit-identical accumulation order).
            RoutineKind::MatvecRows if oc == 1 => {
                routines::vecmat::matvec_into(&cols, go, 0, kdim, n_spatial, &mut gw);
            }
            _ => matmul_nt_into(go, &cols, oc, n_spatial, kdim, &mut gw),
        }
        // dcol = Wᵀ · dY, then scatter back into this sample's range.
        let mut gcols = scratch.take(kdim * n_spatial);
        matmul_tn_into(wm, go, oc, kdim, n_spatial, &mut gcols);
        // SAFETY: sample `ni` exclusively owns its input-gradient range.
        let gi_s = unsafe { gi.slice_mut(ni * sample_in, sample_in) };
        col2im_sample(&gcols, ic, h, w, spec, gi_s);
        scratch.give(cols);
        scratch.give(gcols);
        gw
    });

    // In-order fold: identical accumulation order to the serial loop.
    let mut grad_w = vec![0.0f32; oc * kdim];
    for p in partials {
        for (acc, &v) in grad_w.iter_mut().zip(p.iter()) {
            *acc += v;
        }
        scratch.give(p);
    }
    (
        grad_input,
        Tensor::from_vec(grad_w, &[oc, kdim]).reshape(weight.dims()),
    )
}

/// Reference (direct-loop) convolution used to validate the im2col path.
///
/// Quadratically slower than [`conv2d`]; exposed for tests and benchmarks.
///
/// # Panics
///
/// Panics on the same conditions as [`conv2d`].
pub fn conv2d_naive(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
    let (n, ic, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (oc, _, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let mut out = Tensor::zeros(&[n, oc, oh, ow]);
    for ni in 0..n {
        for oci in 0..oc {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0f32;
                    for ici in 0..ic {
                        for ki in 0..kh {
                            for kj in 0..kw {
                                let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                                let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                                if ii >= 0 && jj >= 0 && (ii as usize) < h && (jj as usize) < w {
                                    acc += input.at(&[ni, ici, ii as usize, jj as usize])
                                        * weight.at(&[oci, ici, ki, kj]);
                                }
                            }
                        }
                    }
                    out.set(&[ni, oci, oi, oj], acc);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rand_t(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        init::uniform(dims, -1.0, 1.0, &mut rng)
    }

    #[test]
    fn out_size_math() {
        let s = ConvSpec::new(3, 1, 1);
        assert_eq!(s.out_size(32), 32);
        let s = ConvSpec::new(3, 2, 1);
        assert_eq!(s.out_size(32), 16);
        let s = ConvSpec::new(1, 1, 0);
        assert_eq!(s.out_size(7), 7);
        let s = ConvSpec::new(7, 2, 3);
        assert_eq!(s.out_size(224), 112);
    }

    #[test]
    fn conv_matches_naive_stride1() {
        let x = rand_t(&[2, 3, 8, 8], 1);
        let w = rand_t(&[4, 3, 3, 3], 2);
        let spec = ConvSpec::new(3, 1, 1);
        assert!(conv2d(&x, &w, spec).approx_eq(&conv2d_naive(&x, &w, spec), 1e-4));
    }

    #[test]
    fn conv_matches_naive_stride2_no_pad() {
        let x = rand_t(&[1, 2, 9, 9], 3);
        let w = rand_t(&[3, 2, 3, 3], 4);
        let spec = ConvSpec::new(3, 2, 0);
        assert!(conv2d(&x, &w, spec).approx_eq(&conv2d_naive(&x, &w, spec), 1e-4));
    }

    #[test]
    fn conv_1x1_is_channel_mix() {
        let x = rand_t(&[1, 2, 4, 4], 5);
        let w = rand_t(&[3, 2, 1, 1], 6);
        let spec = ConvSpec::new(1, 1, 0);
        assert!(conv2d(&x, &w, spec).approx_eq(&conv2d_naive(&x, &w, spec), 1e-5));
    }

    /// The backward pass must be the exact adjoint of the forward map:
    /// <conv(x, w), gy> == <x, grad_x> + ... checked via directional
    /// finite differences on both arguments.
    #[test]
    fn conv_backward_matches_finite_difference() {
        let x = rand_t(&[1, 2, 5, 5], 7);
        let w = rand_t(&[2, 2, 3, 3], 8);
        let spec = ConvSpec::new(3, 1, 1);
        let gy = rand_t(&[1, 2, 5, 5], 9);
        let (gx, gw) = conv2d_backward(&x, &w, &gy, spec);

        let loss = |x: &Tensor, w: &Tensor| conv2d(x, w, spec).dot(&gy);
        let eps = 1e-2f32;
        // Directional derivative along random directions.
        let dx = rand_t(x.dims(), 10);
        let dw = rand_t(w.dims(), 11);
        let mut xp = x.clone();
        xp.axpy(eps, &dx);
        let mut xm = x.clone();
        xm.axpy(-eps, &dx);
        let num_x = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
        assert!((num_x - gx.dot(&dx)).abs() < 2e-2 * (1.0 + num_x.abs()));

        let mut wp = w.clone();
        wp.axpy(eps, &dw);
        let mut wm = w.clone();
        wm.axpy(-eps, &dw);
        let num_w = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
        assert!((num_w - gw.dot(&dw)).abs() < 2e-2 * (1.0 + num_w.abs()));
    }

    #[test]
    fn conv_backward_strided_adjoint_identity() {
        // <A x, y> == <x, Aᵀ y> where A is conv as a linear map in x.
        let x = rand_t(&[2, 2, 7, 7], 12);
        let w = rand_t(&[3, 2, 3, 3], 13);
        let spec = ConvSpec::new(3, 2, 1);
        let y = conv2d(&x, &w, spec);
        let gy = rand_t(y.dims(), 14);
        let (gx, _) = conv2d_backward(&x, &w, &gy, spec);
        let lhs = y.dot(&gy);
        let rhs = x.dot(&gx);
        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }

    /// Forward and backward are bit-identical at 1 and 4 threads, and
    /// scratch reuse across calls does not perturb results.
    #[test]
    fn parallel_and_scratch_reuse_bitexact() {
        let x = rand_t(&[4, 3, 8, 8], 20);
        let w = rand_t(&[5, 3, 3, 3], 21);
        let spec = ConvSpec::new(3, 1, 1);
        let y = conv2d(&x, &w, spec);
        let gy = rand_t(y.dims(), 22);

        let pool = ScratchPool::new();
        let run = || {
            let y = conv2d_with_scratch(&x, &w, spec, &pool);
            let (gx, gw) = conv2d_backward_with_scratch(&x, &w, &gy, spec, &pool);
            (y, gx, gw)
        };
        let serial = par::with_threads(1, run);
        for _ in 0..3 {
            // Repeated calls exercise dirty pooled buffers.
            let parallel = par::with_threads(4, run);
            assert_eq!(serial.0.data(), parallel.0.data());
            assert_eq!(serial.1.data(), parallel.1.data());
            assert_eq!(serial.2.data(), parallel.2.data());
        }
        assert!(pool.idle() > 0, "workspaces returned to the pool");
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_channel_mismatch_panics() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 4, 3, 3]);
        conv2d(&x, &w, ConvSpec::new(3, 1, 1));
    }
}

/// Forward depthwise 2-D convolution: each input channel is convolved
/// with its own single `[KH, KW]` filter (the grouped convolution with
/// `groups == channels` that MobileNet-family models are built from).
///
/// `input` is `[N, C, H, W]`, `weight` is `[C, 1, KH, KW]`; returns
/// `[N, C, OH, OW]`. Parallel over `(sample, channel)` pairs, each of
/// which owns a disjoint output plane.
///
/// # Panics
///
/// Panics on rank or channel mismatches.
pub fn depthwise_conv2d(input: &Tensor, weight: &Tensor, spec: ConvSpec) -> Tensor {
    assert_eq!(input.rank(), 4, "depthwise input must be NCHW");
    assert_eq!(weight.rank(), 4, "depthwise weight must be [C, 1, KH, KW]");
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    assert_eq!(weight.dims()[0], c, "depthwise channel mismatch");
    assert_eq!(
        weight.dims()[1],
        1,
        "depthwise weight must have one input channel"
    );
    assert_eq!(weight.dims()[2], spec.kernel, "kernel mismatch");
    assert_eq!(weight.dims()[3], spec.kernel, "kernel mismatch");
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    let k = spec.kernel;
    let in_data = input.data();
    let w_data = weight.data();
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    par::par_chunks_mut(out.data_mut(), oh * ow, |t, _start, out_s| {
        let (ni, ci) = (t / c, t % c);
        let chan = &in_data[(ni * c + ci) * h * w..(ni * c + ci + 1) * h * w];
        let filt = &w_data[ci * k * k..(ci + 1) * k * k];
        let mut oidx = 0usize;
        for oi in 0..oh {
            for oj in 0..ow {
                let mut acc = 0.0f32;
                for ki in 0..k {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for kj in 0..k {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        if jj >= 0 && jj < w as isize {
                            acc += chan[ii as usize * w + jj as usize] * filt[ki * k + kj];
                        }
                    }
                }
                out_s[oidx] = acc;
                oidx += 1;
            }
        }
    });
    out
}

/// Gradients of [`depthwise_conv2d`] with respect to input and weight,
/// returned as `(grad_input, grad_weight)`.
///
/// Parallel over channels: channel `ci` exclusively owns its filter
/// gradient and the `(·, ci)` planes of the input gradient, and its
/// per-element accumulation order (samples ascending, then output
/// positions) matches the historical serial loop — bit-identical at any
/// thread count.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn depthwise_conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_output: &Tensor,
    spec: ConvSpec,
) -> (Tensor, Tensor) {
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (oh, ow) = (spec.out_size(h), spec.out_size(w));
    assert_eq!(
        grad_output.dims(),
        &[n, c, oh, ow],
        "grad_output shape mismatch"
    );
    let k = spec.kernel;
    let in_data = input.data();
    let w_data = weight.data();
    let go_data = grad_output.data();
    let mut grad_input = Tensor::zeros(input.dims());
    let mut grad_weight = Tensor::zeros(weight.dims());
    let gi = SharedSliceMut::new(grad_input.data_mut());
    let gw = SharedSliceMut::new(grad_weight.data_mut());
    par::for_each_task(c, |ci| {
        let filt = &w_data[ci * k * k..(ci + 1) * k * k];
        // SAFETY: channel `ci` exclusively owns its filter-gradient range.
        let gw_s = unsafe { gw.slice_mut(ci * k * k, k * k) };
        for ni in 0..n {
            let chan_base = (ni * c + ci) * h * w;
            let chan_in = &in_data[chan_base..chan_base + h * w];
            // SAFETY: the (ni, ci) plane belongs to this channel task only.
            let gi_s = unsafe { gi.slice_mut(chan_base, h * w) };
            let mut oidx = (ni * c + ci) * oh * ow;
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = go_data[oidx];
                    oidx += 1;
                    if g == 0.0 {
                        continue;
                    }
                    for ki in 0..k {
                        let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                        if ii < 0 || ii >= h as isize {
                            continue;
                        }
                        for kj in 0..k {
                            let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                            if jj < 0 || jj >= w as isize {
                                continue;
                            }
                            let at = ii as usize * w + jj as usize;
                            gi_s[at] += g * filt[ki * k + kj];
                            gw_s[ki * k + kj] += g * chan_in[at];
                        }
                    }
                }
            }
        }
    });
    (grad_input, grad_weight)
}

#[cfg(test)]
mod depthwise_tests {
    use super::*;
    use crate::init;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rand_t(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        init::uniform(dims, -1.0, 1.0, &mut rng)
    }

    /// Depthwise conv equals per-channel 1-channel dense convs.
    #[test]
    fn matches_per_channel_dense_conv() {
        let x = rand_t(&[2, 3, 6, 6], 0);
        let w = rand_t(&[3, 1, 3, 3], 1);
        let spec = ConvSpec::new(3, 1, 1);
        let y = depthwise_conv2d(&x, &w, spec);
        for ci in 0..3 {
            // Slice channel ci of x into a [2,1,6,6] tensor.
            let mut xc = Tensor::zeros(&[2, 1, 6, 6]);
            for ni in 0..2 {
                for i in 0..36 {
                    xc.data_mut()[ni * 36 + i] = x.data()[(ni * 3 + ci) * 36 + i];
                }
            }
            let wc = Tensor::from_vec(w.data()[ci * 9..(ci + 1) * 9].to_vec(), &[1, 1, 3, 3]);
            let yc = conv2d(&xc, &wc, spec);
            for ni in 0..2 {
                for i in 0..36 {
                    let got = y.data()[(ni * 3 + ci) * 36 + i];
                    let want = yc.data()[ni * 36 + i];
                    assert!((got - want).abs() < 1e-4, "ch {ci}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn strided_output_shape() {
        let x = rand_t(&[1, 4, 8, 8], 2);
        let w = rand_t(&[4, 1, 3, 3], 3);
        let y = depthwise_conv2d(&x, &w, ConvSpec::new(3, 2, 1));
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn backward_is_exact_adjoint() {
        let x = rand_t(&[1, 2, 5, 5], 4);
        let w = rand_t(&[2, 1, 3, 3], 5);
        let spec = ConvSpec::new(3, 2, 1);
        let y = depthwise_conv2d(&x, &w, spec);
        let gy = rand_t(y.dims(), 6);
        let (gx, gw) = depthwise_conv2d_backward(&x, &w, &gy, spec);
        // <Ax, y> == <x, A'y> in both arguments.
        assert!((y.dot(&gy) - x.dot(&gx)).abs() < 1e-3);
        // Weight gradient via finite differences along a direction.
        let dw = rand_t(w.dims(), 7);
        let eps = 1e-2f32;
        let mut wp = w.clone();
        wp.axpy(eps, &dw);
        let mut wm = w.clone();
        wm.axpy(-eps, &dw);
        let num = (depthwise_conv2d(&x, &wp, spec).dot(&gy)
            - depthwise_conv2d(&x, &wm, spec).dot(&gy))
            / (2.0 * eps);
        assert!((num - gw.dot(&dw)).abs() < 2e-2 * (1.0 + num.abs()));
    }

    /// Depthwise forward/backward are bit-identical at 1 and 4 threads.
    #[test]
    fn parallel_matches_serial_bitexact() {
        let x = rand_t(&[3, 5, 7, 7], 8);
        let w = rand_t(&[5, 1, 3, 3], 9);
        let spec = ConvSpec::new(3, 1, 1);
        let y = depthwise_conv2d(&x, &w, spec);
        let gy = rand_t(y.dims(), 10);
        let run = || {
            let y = depthwise_conv2d(&x, &w, spec);
            let (gx, gw) = depthwise_conv2d_backward(&x, &w, &gy, spec);
            (y, gx, gw)
        };
        let serial = par::with_threads(1, run);
        let parallel = par::with_threads(4, run);
        assert_eq!(serial.0.data(), parallel.0.data());
        assert_eq!(serial.1.data(), parallel.1.data());
        assert_eq!(serial.2.data(), parallel.2.data());
    }

    #[test]
    #[should_panic(expected = "depthwise channel mismatch")]
    fn channel_mismatch_panics() {
        depthwise_conv2d(
            &Tensor::zeros(&[1, 3, 4, 4]),
            &Tensor::zeros(&[2, 1, 3, 3]),
            ConvSpec::new(3, 1, 1),
        );
    }
}
