//! Matrix multiplication kernels.
//!
//! Three variants cover the forward pass and both adjoints of a linear map
//! without materializing transposes:
//!
//! * [`Tensor::matmul`] — `C = A · B`
//! * [`Tensor::matmul_tn`] — `C = Aᵀ · B` (weight-gradient shape)
//! * [`Tensor::matmul_nt`] — `C = A · Bᵀ` (input-gradient shape)
//!
//! All use an `i-k-j` loop order so the innermost loop streams contiguous
//! rows of the right operand, which is the main thing that matters for a
//! single-core f32 kernel at the sizes this workspace uses.

use crate::Tensor;

impl Tensor {
    /// Matrix product `self · other` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[k, n]`.
    ///
    /// # Example
    ///
    /// ```
    /// use csq_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dims mismatch: {k} vs {k2}");

        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut out[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (c, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *c += a_ip * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[k, m]` and `other` is `[k, n]`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn inner dims mismatch: {k} vs {k2}");

        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        // Loop over the shared k axis outermost: each iteration is a rank-1
        // update with contiguous reads from both operands.
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let c_row = &mut out[i * n..(i + 1) * n];
                for (c, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *c += a_pi * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[n, k]`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt inner dims mismatch: {k} vs {k2}");

        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut out[i * n..(i + 1) * n];
            for (j, c) in c_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (av, bv) in a_row.iter().zip(b_row.iter()) {
                    acc += av * bv;
                }
                *c = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product `self · v` for `self` `[m, k]`, `v` `[k]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank 2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank 1");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        assert_eq!(v.dims()[0], k, "matvec inner dims mismatch");
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &self.data()[i * k..(i + 1) * k];
            out[i] = row.iter().zip(v.data().iter()).map(|(&a, &b)| a * b).sum();
        }
        Tensor::from_vec(out, &[m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn arange(dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|v| (v as f32) * 0.1 - 1.0).collect(), dims)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = arange(&[4, 7]);
        let b = arange(&[7, 5]);
        assert!(a.matmul(&b).approx_eq(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_identity() {
        let a = arange(&[3, 3]);
        assert!(a.matmul(&Tensor::eye(3)).approx_eq(&a, 1e-6));
        assert!(Tensor::eye(3).matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = arange(&[6, 4]);
        let b = arange(&[6, 5]);
        let expect = a.transpose2().matmul(&b);
        assert!(a.matmul_tn(&b).approx_eq(&expect, 1e-4));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = arange(&[4, 6]);
        let b = arange(&[5, 6]);
        let expect = a.matmul(&b.transpose2());
        assert!(a.matmul_nt(&b).approx_eq(&expect, 1e-4));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = arange(&[4, 3]);
        let v = arange(&[3]);
        let expect = a.matmul(&v.reshape(&[3, 1])).reshape(&[4]);
        assert!(a.matvec(&v).approx_eq(&expect, 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn matmul_dim_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }
}
