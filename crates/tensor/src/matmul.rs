//! Matrix-product entry points: thin, selector-dispatched wrappers.
//!
//! Four variants cover the forward pass and both adjoints of a linear
//! map without materializing transposes:
//!
//! * [`Tensor::matmul`] — `C = A · B`
//! * [`Tensor::matmul_tn`] — `C = Aᵀ · B` (weight-gradient shape)
//! * [`Tensor::matmul_nt`] — `C = A · Bᵀ` (input-gradient shape)
//! * [`Tensor::matvec`] — `out = A · v` (batch-1 inference)
//!
//! None of them contain kernel code: each asks
//! [`crate::selector::select`] which routine/blueprint pair fits the
//! shape and dispatches into [`crate::routines`]. Every routine keeps
//! per-element `p`-ascending accumulation and carves parallel work
//! through [`crate::par`] with shape-only chunk boundaries, so any
//! selection — and any thread count — produces bit-identical results;
//! the selector only moves latency. When the obs kernel profiler is
//! recording, each call logs one sample tagged with the selected
//! routine and blueprint (`gemm_nn` / `gemm_tn` / `gemm_nt` /
//! `gemm_mv` rows in BENCH reports).

use crate::routines::{self, RoutineKind};
use crate::selector::{self, FloatOp};
use crate::Tensor;

/// Dispatches an NN-shape product to a specific routine. Routines that
/// only cover single-row products fall back to the general blocked
/// kernel on other shapes, so a stale profile entry can never produce a
/// wrong result.
fn dispatch_nn(
    routine: RoutineKind,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    match routine {
        RoutineKind::PackedPanel => routines::packed_gemm::matmul(a, b, m, k, n, out),
        RoutineKind::VecmatCols if m == 1 => routines::vecmat::vecmat_cols(a, b, k, n, out),
        _ => routines::blocked::matmul(a, b, m, k, n, out),
    }
}

impl Tensor {
    /// Matrix product `self · other` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[k, n]`.
    ///
    /// # Example
    ///
    /// ```
    /// use csq_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dims mismatch: {k} vs {k2}");

        let sel = selector::select(FloatOp::MatmulNn, m, k, n);
        let t0 = selector::prof_start();
        let mut out = vec![0.0f32; m * n];
        dispatch_nn(sel.routine, self.data(), other.data(), m, k, n, &mut out);
        selector::prof_record(
            "gemm_nn",
            sel,
            &[m, k, n],
            (4 * (m * k + k * n + m * n)) as u64,
            t0,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `self · other` through an explicitly chosen
    /// routine, bypassing the selector. Exists for equivalence tests,
    /// autotuning, and benches; results are bit-identical across every
    /// legal routine.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or a routine that is not legal for the
    /// NN product (see [`crate::selector::allowed`]).
    pub fn matmul_with(&self, other: &Tensor, routine: RoutineKind) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dims mismatch: {k} vs {k2}");
        assert!(
            selector::allowed(FloatOp::MatmulNn).contains(&routine),
            "routine {} is not a matmul routine",
            routine.name()
        );
        let mut out = vec![0.0f32; m * n];
        dispatch_nn(routine, self.data(), other.data(), m, k, n, &mut out);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[k, m]` and `other` is `[k, n]`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn inner dims mismatch: {k} vs {k2}");

        let sel = selector::select(FloatOp::MatmulTn, m, k, n);
        let t0 = selector::prof_start();
        let mut out = vec![0.0f32; m * n];
        routines::tall_skinny::matmul_tn(self.data(), other.data(), k, m, n, &mut out);
        selector::prof_record(
            "gemm_tn",
            sel,
            &[m, k, n],
            (4 * (m * k + k * n + m * n)) as u64,
            t0,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[n, k]`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt inner dims mismatch: {k} vs {k2}");

        let sel = selector::select(FloatOp::MatmulNt, m, k, n);
        let t0 = selector::prof_start();
        let mut out = vec![0.0f32; m * n];
        match sel.routine {
            // A single-row NT product is a matvec over the rows of B.
            RoutineKind::MatvecRows if m == 1 => {
                routines::vecmat::matvec_rows(other.data(), self.data(), n, k, &mut out);
            }
            _ => routines::tall_skinny::matmul_nt(self.data(), other.data(), m, k, n, &mut out),
        }
        selector::prof_record(
            "gemm_nt",
            sel,
            &[m, k, n],
            (4 * (m * k + k * n + m * n)) as u64,
            t0,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product `self · v` for `self` `[m, k]`, `v` `[k]`,
    /// routed through the row-parallel vecmat routine.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank 2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank 1");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        assert_eq!(v.dims()[0], k, "matvec inner dims mismatch");
        let sel = selector::select(FloatOp::Matvec, m, k, 1);
        let t0 = selector::prof_start();
        let mut out = vec![0.0f32; m];
        routines::vecmat::matvec_rows(self.data(), v.data(), m, k, &mut out);
        selector::prof_record("gemm_mv", sel, &[m, k], (4 * (m * k + k + m)) as u64, t0);
        Tensor::from_vec(out, &[m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par;
    use crate::routines::blocked::matmul_into;
    use crate::routines::tall_skinny::{matmul_nt_into, matmul_tn_into};

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn arange(dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|v| (v as f32) * 0.1 - 1.0).collect(), dims)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = arange(&[4, 7]);
        let b = arange(&[7, 5]);
        assert!(a.matmul(&b).approx_eq(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_identity() {
        let a = arange(&[3, 3]);
        assert!(a.matmul(&Tensor::eye(3)).approx_eq(&a, 1e-6));
        assert!(Tensor::eye(3).matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = arange(&[6, 4]);
        let b = arange(&[6, 5]);
        let expect = a.transpose2().matmul(&b);
        assert!(a.matmul_tn(&b).approx_eq(&expect, 1e-4));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = arange(&[4, 6]);
        let b = arange(&[5, 6]);
        let expect = a.matmul(&b.transpose2());
        assert!(a.matmul_nt(&b).approx_eq(&expect, 1e-4));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = arange(&[4, 3]);
        let v = arange(&[3]);
        let expect = a.matmul(&v.reshape(&[3, 1])).reshape(&[4]);
        assert!(a.matvec(&v).approx_eq(&expect, 1e-5));
    }

    #[test]
    fn single_row_variants_are_bit_identical_to_multi_row_kernels() {
        // m = 1 dispatches to the vecmat routines; results must equal
        // the general kernels bit-for-bit.
        let a = arange(&[1, 37]);
        let b = arange(&[37, 23]);
        assert_eq!(
            a.matmul(&b).data(),
            a.matmul_with(&b, RoutineKind::Blocked).data()
        );
        let bt = arange(&[23, 37]);
        let mut nt_general = vec![0.0f32; 23];
        crate::routines::tall_skinny::matmul_nt(a.data(), bt.data(), 1, 37, 23, &mut nt_general);
        assert_eq!(a.matmul_nt(&bt).data(), &nt_general[..]);
        let v = arange(&[37]);
        let am = arange(&[5, 37]);
        let mv = am.matvec(&v);
        for i in 0..5 {
            let row = Tensor::from_vec(am.data()[i * 37..(i + 1) * 37].to_vec(), &[1, 37]);
            assert_eq!(row.matvec(&v).data()[0], mv.data()[i]);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn matmul_dim_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    /// The determinism contract: every variant produces bit-identical
    /// output at 1 and 4 threads, on shapes big enough to actually split.
    #[test]
    fn parallel_matches_serial_bitexact() {
        let a = arange(&[33, 47]);
        let b = arange(&[47, 29]);
        let at = arange(&[47, 33]);
        let bt = arange(&[29, 47]);
        let serial = par::with_threads(1, || (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt)));
        let parallel = par::with_threads(4, || (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt)));
        assert_eq!(serial.0.data(), parallel.0.data());
        assert_eq!(serial.1.data(), parallel.1.data());
        assert_eq!(serial.2.data(), parallel.2.data());
    }

    /// Into-variants (used by conv) agree with the public methods.
    #[test]
    fn into_variants_match_public_methods() {
        let a = arange(&[5, 8]);
        let b = arange(&[8, 6]);
        let mut out = vec![1.0f32; 5 * 6];
        matmul_into(a.data(), b.data(), 5, 8, 6, &mut out);
        assert_eq!(out, a.matmul(&b).data());

        let at = arange(&[8, 5]);
        let mut out_tn = vec![1.0f32; 5 * 6];
        matmul_tn_into(at.data(), b.data(), 8, 5, 6, &mut out_tn);
        assert_eq!(out_tn, at.matmul_tn(&b).data());

        let bt = arange(&[6, 8]);
        let mut out_nt = vec![1.0f32; 5 * 6];
        matmul_nt_into(a.data(), bt.data(), 5, 8, 6, &mut out_nt);
        assert_eq!(out_nt, a.matmul_nt(&bt).data());
    }

    /// Every legal NN routine returns bit-identical results on the same
    /// operands.
    #[test]
    fn all_nn_routines_agree_bit_exactly() {
        let a = arange(&[21, 50]);
        let b = arange(&[50, 19]);
        let blocked = a.matmul_with(&b, RoutineKind::Blocked);
        let packed = a.matmul_with(&b, RoutineKind::PackedPanel);
        assert_eq!(blocked.data(), packed.data());
    }
}
