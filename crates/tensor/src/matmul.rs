//! Matrix multiplication kernels.
//!
//! Three variants cover the forward pass and both adjoints of a linear map
//! without materializing transposes:
//!
//! * [`Tensor::matmul`] — `C = A · B`
//! * [`Tensor::matmul_tn`] — `C = Aᵀ · B` (weight-gradient shape)
//! * [`Tensor::matmul_nt`] — `C = A · Bᵀ` (input-gradient shape)
//!
//! All three parallelize over output rows through [`crate::par`]: rows are
//! disjoint, so any thread count produces bit-identical results. Within a
//! task the inner kernel blocks the shared `k` axis ([`KC`]) so a stripe
//! of the right operand stays cache-resident across the task's rows; the
//! per-element accumulation order stays `p`-ascending, so blocking does
//! not change results either.
//!
//! `matmul_tn` keeps a `0.0` skip on the left operand: its main caller is
//! the bit-plane adjoint where entire planes are gated to zero, so the
//! branch pays for itself. The dense `matmul`/`matmul_nt` paths carry no
//! such branch (it mispredicts on dense data).

use crate::{par, Tensor};

/// k-axis block size for the inner kernels: `KC` rows of the right
/// operand (`KC × n` floats) stay hot while a task sweeps its rows.
const KC: usize = 64;

/// `out[i0..i0+rows] += a[i0..i0+rows] · b`, serial, with `out` holding
/// exactly `rows * n` pre-zeroed elements. Accumulation per element is
/// `p`-ascending regardless of blocking.
fn matmul_rows(a: &[f32], b: &[f32], i0: usize, rows: usize, k: usize, n: usize, out: &mut [f32]) {
    for p0 in (0..k).step_by(KC) {
        let pe = (p0 + KC).min(k);
        for i in 0..rows {
            let a_row = &a[(i0 + i) * k..(i0 + i + 1) * k];
            let c_row = &mut out[i * n..(i + 1) * n];
            for p in p0..pe {
                let a_ip = a_row[p];
                let b_row = &b[p * n..(p + 1) * n];
                for (c, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *c += a_ip * bv;
                }
            }
        }
    }
}

/// `out[i0..i0+rows] = a[i0..i0+rows] · bᵀ` for `b` of shape `[n, k]`,
/// serial; `out` holds exactly `rows * n` elements (overwritten).
fn matmul_nt_rows(
    a: &[f32],
    b: &[f32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    for i in 0..rows {
        let a_row = &a[(i0 + i) * k..(i0 + i + 1) * k];
        let c_row = &mut out[i * n..(i + 1) * n];
        for (j, c) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *c = acc;
        }
    }
}

/// `out[i0..i0+rows] += (aᵀ)[i0..i0+rows] · b` for `a` of shape `[k, m]`,
/// serial, `out` pre-zeroed. Reads of `a` are column-strided, but the
/// `0.0` skip (bit-plane sparsity) makes this the cheaper layout for the
/// quantized adjoint. Accumulation per element is `p`-ascending — the
/// same order as the historical `p`-outer serial kernel.
fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    i0: usize,
    rows: usize,
    k: usize,
    m: usize,
    n: usize,
    out: &mut [f32],
) {
    for i in 0..rows {
        let c_row = &mut out[i * n..(i + 1) * n];
        for p in 0..k {
            let a_pi = a[p * m + i0 + i];
            if a_pi == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                *c += a_pi * bv;
            }
        }
    }
}

/// Serial `out = a · b` into a caller-provided buffer (`a` `[m, k]`,
/// `b` `[k, n]`, `out` `m * n`). Used inside already-parallel regions
/// (per-sample conv tasks) where nesting another fan-out would only
/// oversubscribe.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    matmul_rows(a, b, 0, m, k, n, out);
}

/// Serial `out = a · bᵀ` into a caller-provided buffer (`a` `[m, k]`,
/// `b` `[n, k]`, `out` `m * n`).
pub(crate) fn matmul_nt_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    matmul_nt_rows(a, b, 0, m, k, n, out);
}

/// Serial `out = aᵀ · b` into a caller-provided buffer (`a` `[k, m]`,
/// `b` `[k, n]`, `out` `m * n`, pre-zeroed here).
pub(crate) fn matmul_tn_into(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    matmul_tn_rows(a, b, 0, m, k, m, n, out);
}

impl Tensor {
    /// Matrix product `self · other` for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[k, n]`.
    ///
    /// # Example
    ///
    /// ```
    /// use csq_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul inner dims mismatch: {k} vs {k2}");

        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        let rows_per_task = par::chunk_len(m, 2 * k * n);
        par::par_chunks_mut(&mut out, rows_per_task * n.max(1), |_t, start, chunk| {
            matmul_rows(a, b, start / n, chunk.len() / n, k, n, chunk);
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `selfᵀ · other` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[k, m]` and `other` is `[k, n]`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn inner dims mismatch: {k} vs {k2}");

        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        let rows_per_task = par::chunk_len(m, 2 * k * n);
        par::par_chunks_mut(&mut out, rows_per_task * n.max(1), |_t, start, chunk| {
            matmul_tn_rows(a, b, start / n, chunk.len() / n, k, m, n, chunk);
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product `self · otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[n, k]`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt inner dims mismatch: {k} vs {k2}");

        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        let rows_per_task = par::chunk_len(m, 2 * k * n);
        par::par_chunks_mut(&mut out, rows_per_task * n.max(1), |_t, start, chunk| {
            matmul_nt_rows(a, b, start / n, chunk.len() / n, k, n, chunk);
        });
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix–vector product `self · v` for `self` `[m, k]`, `v` `[k]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank 2");
        assert_eq!(v.rank(), 1, "matvec rhs must be rank 1");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        assert_eq!(v.dims()[0], k, "matvec inner dims mismatch");
        let mut out = vec![0.0f32; m];
        for i in 0..m {
            let row = &self.data()[i * k..(i + 1) * k];
            out[i] = row.iter().zip(v.data().iter()).map(|(&a, &b)| a * b).sum();
        }
        Tensor::from_vec(out, &[m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn arange(dims: &[usize]) -> Tensor {
        let n: usize = dims.iter().product();
        Tensor::from_vec((0..n).map(|v| (v as f32) * 0.1 - 1.0).collect(), dims)
    }

    #[test]
    fn matmul_matches_naive() {
        let a = arange(&[4, 7]);
        let b = arange(&[7, 5]);
        assert!(a.matmul(&b).approx_eq(&naive(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_identity() {
        let a = arange(&[3, 3]);
        assert!(a.matmul(&Tensor::eye(3)).approx_eq(&a, 1e-6));
        assert!(Tensor::eye(3).matmul(&a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = arange(&[6, 4]);
        let b = arange(&[6, 5]);
        let expect = a.transpose2().matmul(&b);
        assert!(a.matmul_tn(&b).approx_eq(&expect, 1e-4));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = arange(&[4, 6]);
        let b = arange(&[5, 6]);
        let expect = a.matmul(&b.transpose2());
        assert!(a.matmul_nt(&b).approx_eq(&expect, 1e-4));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = arange(&[4, 3]);
        let v = arange(&[3]);
        let expect = a.matmul(&v.reshape(&[3, 1])).reshape(&[4]);
        assert!(a.matvec(&v).approx_eq(&expect, 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn matmul_dim_mismatch_panics() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    /// The determinism contract: every variant produces bit-identical
    /// output at 1 and 4 threads, on shapes big enough to actually split.
    #[test]
    fn parallel_matches_serial_bitexact() {
        let a = arange(&[33, 47]);
        let b = arange(&[47, 29]);
        let at = arange(&[47, 33]);
        let bt = arange(&[29, 47]);
        let serial = par::with_threads(1, || {
            (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt))
        });
        let parallel = par::with_threads(4, || {
            (a.matmul(&b), at.matmul_tn(&b), a.matmul_nt(&bt))
        });
        assert_eq!(serial.0.data(), parallel.0.data());
        assert_eq!(serial.1.data(), parallel.1.data());
        assert_eq!(serial.2.data(), parallel.2.data());
    }

    /// Into-variants (used by conv) agree with the public methods.
    #[test]
    fn into_variants_match_public_methods() {
        let a = arange(&[5, 8]);
        let b = arange(&[8, 6]);
        let mut out = vec![1.0f32; 5 * 6];
        matmul_into(a.data(), b.data(), 5, 8, 6, &mut out);
        assert_eq!(out, a.matmul(&b).data());

        let at = arange(&[8, 5]);
        let mut out_tn = vec![1.0f32; 5 * 6];
        matmul_tn_into(at.data(), b.data(), 8, 5, 6, &mut out_tn);
        assert_eq!(out_tn, at.matmul_tn(&b).data());

        let bt = arange(&[6, 8]);
        let mut out_nt = vec![1.0f32; 5 * 6];
        matmul_nt_into(a.data(), bt.data(), 5, 8, 6, &mut out_nt);
        assert_eq!(out_nt, a.matmul_nt(&bt).data());
    }
}
