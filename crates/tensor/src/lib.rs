//! Dense `f32` tensor substrate for the CSQ reproduction.
//!
//! This crate provides the numerical foundation that the rest of the
//! workspace builds on: a contiguous row-major [`Tensor`] type with
//! elementwise arithmetic, matrix products ([`matmul`](Tensor::matmul)),
//! im2col-based 2-D convolution ([`conv`]), pooling ([`pool`]),
//! reductions ([`reduce`]) and parameter initializers ([`init`]).
//!
//! The design goal is *exactness and predictability*, not peak FLOPs: the
//! CSQ paper's central claim is that its training path is fully
//! differentiable with no gradient approximation, so every operation here
//! has a hand-derived adjoint in `csq-nn` that is verified against finite
//! differences.
//!
//! Hot kernels fan out over the deterministic worker pool in [`par`]:
//! results are bit-identical to serial execution at any thread count
//! (see the `CSQ_THREADS` environment variable).
//!
//! # Kernel architecture
//!
//! GEMM-shaped work is layered three deep:
//!
//! 1. [`blueprint`] — tile-hierarchy descriptions (cache block and
//!    register micro-kernel extents, packed panel layouts) as plain
//!    data.
//! 2. [`routines`] — the kernel implementations: the packed-panel GEMM,
//!    the blocked fallback, fused-transpose gradient kernels, vecmat
//!    (batch-1), and the im2col-fused conv. Every routine keeps
//!    per-element `p`-ascending accumulation and shape-only parallel
//!    chunking, so all routines are bit-identical on the same operands
//!    at any thread count.
//! 3. [`selector`] — the deterministic shape-keyed table (plus an
//!    optional cached autotune profile from `CSQ_KERNEL_PROFILE`) that
//!    the `Tensor` entry points dispatch through. Because of (2), the
//!    selector only moves latency — never results.
//!
//! # Example
//!
//! ```
//! use csq_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

#![deny(missing_docs)]

pub mod blueprint;
pub mod conv;
pub mod init;
pub mod matmul;
pub mod par;
pub mod pool;
pub mod reduce;
pub mod routines;
pub mod selector;
mod shape;
mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;

/// Error produced when constructing a tensor from mismatched data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeMismatchError {
    /// Number of elements implied by the requested shape.
    pub expected: usize,
    /// Number of elements actually provided.
    pub actual: usize,
}

impl std::fmt::Display for ShapeMismatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shape implies {} elements but {} were provided",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for ShapeMismatchError {}
