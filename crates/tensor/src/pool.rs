//! Spatial pooling operations with exact adjoints.

use crate::Tensor;

/// Result of a max-pool forward pass: the pooled tensor plus the flat
/// input offset chosen for every output element (needed by the backward
/// pass).
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled activations, `[N, C, OH, OW]`.
    pub output: Tensor,
    /// For each output element, the flat index into the input that won.
    pub argmax: Vec<usize>,
}

/// 2×2-style max pooling with square window `k` and stride `s` (no padding).
///
/// # Panics
///
/// Panics unless `input` is rank 4 and the window fits.
pub fn maxpool2d(input: &Tensor, k: usize, s: usize) -> MaxPoolOutput {
    assert_eq!(input.rank(), 4, "maxpool2d requires NCHW input");
    assert!(k > 0 && s > 0, "window and stride must be positive");
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    assert!(h >= k && w >= k, "pooling window larger than input");
    let oh = (h - k) / s + 1;
    let ow = (w - k) / s + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let data = input.data();
    let mut oidx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_at = base;
                    for ki in 0..k {
                        for kj in 0..k {
                            let at = base + (oi * s + ki) * w + (oj * s + kj);
                            if data[at] > best {
                                best = data[at];
                                best_at = at;
                            }
                        }
                    }
                    out.data_mut()[oidx] = best;
                    argmax[oidx] = best_at;
                    oidx += 1;
                }
            }
        }
    }
    MaxPoolOutput {
        output: out,
        argmax,
    }
}

/// Backward pass of [`maxpool2d`]: routes each output gradient to the
/// input element that won the max.
///
/// # Panics
///
/// Panics if `grad_output.numel() != argmax.len()`.
pub fn maxpool2d_backward(
    grad_output: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Tensor {
    assert_eq!(
        grad_output.numel(),
        argmax.len(),
        "grad_output / argmax length mismatch"
    );
    let mut grad_input = Tensor::zeros(input_dims);
    for (g, &at) in grad_output.data().iter().zip(argmax.iter()) {
        grad_input.data_mut()[at] += g;
    }
    grad_input
}

/// Average pooling with square window `k` and stride `s` (no padding).
///
/// # Panics
///
/// Panics unless `input` is rank 4 and the window fits.
pub fn avgpool2d(input: &Tensor, k: usize, s: usize) -> Tensor {
    assert_eq!(input.rank(), 4, "avgpool2d requires NCHW input");
    assert!(k > 0 && s > 0, "window and stride must be positive");
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    assert!(h >= k && w >= k, "pooling window larger than input");
    let oh = (h - k) / s + 1;
    let ow = (w - k) / s + 1;
    let norm = 1.0 / (k * k) as f32;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let data = input.data();
    let mut oidx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0f32;
                    for ki in 0..k {
                        let row = base + (oi * s + ki) * w + oj * s;
                        for kj in 0..k {
                            acc += data[row + kj];
                        }
                    }
                    out.data_mut()[oidx] = acc * norm;
                    oidx += 1;
                }
            }
        }
    }
    out
}

/// Backward pass of [`avgpool2d`]: spreads each output gradient uniformly
/// over its window.
///
/// # Panics
///
/// Panics on inconsistent geometry.
pub fn avgpool2d_backward(
    grad_output: &Tensor,
    input_dims: &[usize],
    k: usize,
    s: usize,
) -> Tensor {
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let oh = (h - k) / s + 1;
    let ow = (w - k) / s + 1;
    assert_eq!(
        grad_output.dims(),
        &[n, c, oh, ow],
        "grad_output shape mismatch"
    );
    let norm = 1.0 / (k * k) as f32;
    let mut grad_input = Tensor::zeros(input_dims);
    let go = grad_output.data();
    let mut oidx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = go[oidx] * norm;
                    oidx += 1;
                    for ki in 0..k {
                        let row = base + (oi * s + ki) * w + oj * s;
                        for kj in 0..k {
                            grad_input.data_mut()[row + kj] += g;
                        }
                    }
                }
            }
        }
    }
    grad_input
}

/// Global average pooling: `[N, C, H, W]` → `[N, C]`.
///
/// # Panics
///
/// Panics unless `input` is rank 4.
pub fn global_avgpool(input: &Tensor) -> Tensor {
    assert_eq!(input.rank(), 4, "global_avgpool requires NCHW input");
    let (n, c, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let hw = (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let s: f32 = input.data()[base..base + h * w].iter().sum();
            out.data_mut()[ni * c + ci] = s / hw;
        }
    }
    out
}

/// Backward pass of [`global_avgpool`].
///
/// # Panics
///
/// Panics on inconsistent geometry.
pub fn global_avgpool_backward(grad_output: &Tensor, input_dims: &[usize]) -> Tensor {
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    assert_eq!(grad_output.dims(), &[n, c], "grad_output shape mismatch");
    let norm = 1.0 / (h * w) as f32;
    let mut grad_input = Tensor::zeros(input_dims);
    for ni in 0..n {
        for ci in 0..c {
            let g = grad_output.data()[ni * c + ci] * norm;
            let base = (ni * c + ci) * h * w;
            for v in &mut grad_input.data_mut()[base..base + h * w] {
                *v = g;
            }
        }
    }
    grad_input
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_max_and_routes_grad() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 0.0, //
                3.0, 4.0, 1.0, 1.0, //
                0.0, 0.0, 9.0, 8.0, //
                0.0, 0.0, 7.0, 6.0,
            ],
            &[1, 1, 4, 4],
        );
        let p = maxpool2d(&x, 2, 2);
        assert_eq!(p.output.data(), &[4.0, 5.0, 0.0, 9.0]);
        let gy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let gx = maxpool2d_backward(&gy, &p.argmax, x.dims());
        assert_eq!(gx.at(&[0, 0, 1, 1]), 1.0); // the 4.0
        assert_eq!(gx.at(&[0, 0, 0, 2]), 2.0); // the 5.0
        assert_eq!(gx.at(&[0, 0, 2, 2]), 4.0); // the 9.0
        assert_eq!(gx.sum(), 10.0);
    }

    #[test]
    fn avgpool_is_uniform_average() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = avgpool2d(&x, 2, 2);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
        let gy = Tensor::ones(&[1, 1, 2, 2]);
        let gx = avgpool2d_backward(&gy, x.dims(), 2, 2);
        assert!(gx.iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn avgpool_adjoint_identity() {
        let x = Tensor::from_vec((0..36).map(|v| v as f32 * 0.3 - 5.0).collect(), &[1, 1, 6, 6]);
        let y = avgpool2d(&x, 3, 3);
        let gy = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[1, 1, 2, 2]);
        let gx = avgpool2d_backward(&gy, x.dims(), 3, 3);
        assert!((y.dot(&gy) - x.dot(&gx)).abs() < 1e-4);
    }

    #[test]
    fn global_avgpool_matches_mean() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let y = global_avgpool(&x);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let gy = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]);
        let gx = global_avgpool_backward(&gy, x.dims());
        assert!(gx.data()[..4].iter().all(|&v| v == 1.0));
        assert!(gx.data()[4..].iter().all(|&v| v == 2.0));
    }

    #[test]
    #[should_panic(expected = "pooling window larger than input")]
    fn window_too_large_panics() {
        maxpool2d(&Tensor::zeros(&[1, 1, 2, 2]), 3, 1);
    }
}
