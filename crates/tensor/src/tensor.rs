//! The dense, contiguous, row-major `f32` tensor type.

use crate::{Shape, ShapeMismatchError};
use serde::{Deserialize, Serialize};

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// All operations allocate fresh output tensors unless their name ends in
/// `_assign` or `_inplace`. Shapes are validated eagerly; elementwise
/// operations require identical shapes (no implicit broadcasting — the few
/// broadcast patterns the workspace needs are provided as dedicated,
/// explicitly-named methods such as [`Tensor::add_channel_bias`]).
///
/// # Example
///
/// ```
/// use csq_tensor::Tensor;
///
/// let x = Tensor::full(&[2, 3], 2.0);
/// let y = x.mul_scalar(0.5).add_scalar(1.0);
/// assert!(y.iter().all(|v| (v - 2.0).abs() < 1e-6));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::scalar(),
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied
    /// by `dims`. Use [`Tensor::try_from_vec`] for a fallible variant.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        Self::try_from_vec(data, dims).expect("data length must match shape")
    }

    /// Fallible variant of [`Tensor::from_vec`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeMismatchError`] when `data.len()` differs from the
    /// element count implied by `dims`.
    pub fn try_from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, ShapeMismatchError> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(ShapeMismatchError {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The extents along each axis.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Flat row-major view of the data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterates over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or is out of range.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.flat_index(idx)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or is out of range.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let flat = self.shape.flat_index(idx);
        self.data[flat] = value;
    }

    /// The single value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a single-element tensor");
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape must preserve element count ({} -> {})",
            self.shape,
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape,
        }
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2 requires a matrix");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Extracts rows `[start, end)` along axis 0 as a new tensor.
    ///
    /// # Panics
    ///
    /// Panics on a rank-0 tensor or when `start > end` or `end` exceeds the
    /// extent of axis 0.
    pub fn slice_axis0(&self, start: usize, end: usize) -> Tensor {
        assert!(self.rank() >= 1, "slice_axis0 requires rank >= 1");
        let d0 = self.shape.dim(0);
        assert!(start <= end && end <= d0, "slice bounds out of range");
        let inner: usize = self.shape.dims()[1..].iter().product();
        let mut dims = self.shape.dims().to_vec();
        dims[0] = end - start;
        Tensor {
            data: self.data[start * inner..end * inner].to_vec(),
            shape: Shape::new(&dims),
        }
    }

    /// Concatenates tensors along axis 0. All inputs must agree on the
    /// remaining axes.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing shapes differ.
    pub fn concat_axis0(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat requires at least one tensor");
        let tail = &parts[0].dims()[1..];
        let mut total0 = 0;
        for p in parts {
            assert_eq!(&p.dims()[1..], tail, "trailing dims must match");
            total0 += p.dims()[0];
        }
        let mut dims = parts[0].dims().to_vec();
        dims[0] = total0;
        let mut data = Vec::with_capacity(Shape::new(&dims).numel());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor {
            data,
            shape: Shape::new(&dims),
        }
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic (same-shape)
    // ------------------------------------------------------------------

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert!(
            self.shape == other.shape,
            "{op}: shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
    }

    /// Elementwise sum. Shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference. Shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise product. Shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise quotient. Shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "div");
        self.zip_with(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place. Shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign_t(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "add_assign_t");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Adds `alpha * other` into `self` in place (axpy). Shapes must match.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * *b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.map(|v| -v)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiplies every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        self.assert_same_shape(other, "zip_with");
        Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Broadcast helpers used by the NN layers
    // ------------------------------------------------------------------

    /// Adds a per-channel bias to an NCHW activation tensor.
    ///
    /// `self` has shape `[n, c, h, w]` and `bias` has shape `[c]`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn add_channel_bias(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 4, "add_channel_bias requires NCHW input");
        let (n, c, h, w) = (
            self.shape.dim(0),
            self.shape.dim(1),
            self.shape.dim(2),
            self.shape.dim(3),
        );
        assert_eq!(bias.dims(), &[c], "bias must have shape [C]");
        let mut out = self.clone();
        let hw = h * w;
        for ni in 0..n {
            for ci in 0..c {
                let b = bias.data[ci];
                let base = (ni * c + ci) * hw;
                for v in &mut out.data[base..base + hw] {
                    *v += b;
                }
            }
        }
        out
    }

    /// Adds a per-column bias to a `[rows, cols]` matrix (used by `Linear`).
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn add_row_bias(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "add_row_bias requires a matrix");
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        assert_eq!(bias.dims(), &[c], "bias must have shape [cols]");
        let mut out = self.clone();
        for i in 0..r {
            for j in 0..c {
                out.data[i * c + j] += bias.data[j];
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Scalar summaries
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum absolute value (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "max of empty tensor");
        self.data.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v))
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        assert!(!self.data.is_empty(), "min of empty tensor");
        self.data.iter().fold(f32::INFINITY, |m, &v| m.min(v))
    }

    /// Dot product of two same-shaped tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn dot(&self, other: &Tensor) -> f32 {
        self.assert_same_shape(other, "dot");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Frobenius / L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Returns `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Returns `true` when the two tensors match elementwise within `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(8).map(|v| format!("{v:.4}")).collect();
        write!(f, "[{}{}]", preview.join(", "), if self.numel() > 8 { ", …" } else { "" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[3]).sum(), 3.0);
        assert_eq!(Tensor::full(&[2], 2.5).sum(), 5.0);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
        let i = Tensor::eye(3);
        assert_eq!(i.sum(), 3.0);
        assert_eq!(i.at(&[1, 1]), 1.0);
        assert_eq!(i.at(&[0, 1]), 0.0);
    }

    #[test]
    fn try_from_vec_validates_length() {
        let err = Tensor::try_from_vec(vec![1.0; 3], &[2, 2]).unwrap_err();
        assert_eq!(err.expected, 4);
        assert_eq!(err.actual, 3);
        assert!(Tensor::try_from_vec(vec![1.0; 4], &[2, 2]).is_ok());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.neg().data(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let _ = Tensor::zeros(&[2]).add(&Tensor::zeros(&[3]));
    }

    #[test]
    fn inplace_ops() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        a.axpy(2.0, &Tensor::from_vec(vec![3.0, 4.0], &[2]));
        assert_eq!(a.data(), &[7.0, 10.0]);
        a.scale_inplace(0.5);
        assert_eq!(a.data(), &[3.5, 5.0]);
        a.fill(1.0);
        assert_eq!(a.data(), &[1.0, 1.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.data(), a.data());
        assert_eq!(b.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "reshape must preserve element count")]
    fn reshape_bad_count_panics() {
        Tensor::zeros(&[2, 3]).reshape(&[4]);
    }

    #[test]
    fn transpose2_round_trip() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let t = a.transpose2();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert!(t.transpose2().approx_eq(&a, 0.0));
    }

    #[test]
    fn slice_and_concat_axis0() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]);
        let top = a.slice_axis0(0, 2);
        let bottom = a.slice_axis0(2, 4);
        assert_eq!(top.dims(), &[2, 3]);
        let back = Tensor::concat_axis0(&[&top, &bottom]);
        assert!(back.approx_eq(&a, 0.0));
    }

    #[test]
    fn channel_bias_broadcast() {
        let x = Tensor::zeros(&[1, 2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        let y = x.add_channel_bias(&b);
        assert_eq!(y.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(y.at(&[0, 1, 0, 0]), -1.0);
    }

    #[test]
    fn row_bias_broadcast() {
        let x = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let y = x.add_row_bias(&b);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn scalar_summaries() {
        let a = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]);
        assert_eq!(a.max_abs(), 3.0);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.min(), -3.0);
        assert!((a.mean() - 0.0).abs() < 1e-6);
        assert!((a.norm() - (14.0f32).sqrt()).abs() < 1e-6);
        assert_eq!(a.dot(&a), 14.0);
    }

    #[test]
    fn finiteness_check() {
        let mut a = Tensor::ones(&[2]);
        assert!(a.all_finite());
        a.data_mut()[0] = f32::NAN;
        assert!(!a.all_finite());
    }
}
