//! Tiling blueprints: the tile hierarchy of every kernel routine, as
//! data instead of hard-coded constants.
//!
//! A [`Blueprint`] names the cache/register blocking one routine runs
//! with: how many left-operand rows a parallel task packs at once
//! (`mc`), the depth-axis blocking (`kc`), the streamed right-operand
//! panel width (`nc`), and the register-block micro-kernel shape
//! (`mr × nr`). Routines read their shape from a blueprint rather than
//! burying magic numbers in loop bounds, so the selector can report
//! *which* tiling ran (profiler tags carry the blueprint name) and an
//! autotune profile can, in the future, switch blueprints per shape
//! class without touching kernel code.
//!
//! # The `kc = 0` convention
//!
//! Classic BLIS-style GEMM re-blocks the depth axis: it accumulates a
//! `kc`-deep partial product into the output, then adds the next block.
//! That changes the per-element floating-point accumulation order, and
//! this workspace's contract is that every kernel accumulates each
//! output element in strictly `p`-ascending order so results are
//! bit-identical to the historical kernels at any thread count. The
//! packed routines therefore hold their register accumulators across
//! the **full** reduction depth — written as `kc = 0` ("unblocked") in
//! their blueprints. A nonzero `kc` remains meaningful for routines
//! that only use it as a read-locality hint (the blocked fallback loops
//! `kc` rows of the right operand while sweeping a task's rows, which
//! reorders *reads*, never the per-element accumulation).
//!
//! Axes a routine does not block at all are likewise written as `0`.

/// The tile hierarchy of one kernel routine, as plain data.
///
/// All extents are in elements; `0` means "axis unblocked" (see the
/// module docs for the `kc = 0` accumulation-order convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blueprint {
    /// Stable name, used as the profiler/bench `blueprint` tag and in
    /// autotune profile files.
    pub name: &'static str,
    /// Left-operand rows a parallel task packs per panel; row-chunk
    /// boundaries are rounded to a multiple of this (shape-only, so
    /// thread-count determinism is unaffected).
    pub mc: usize,
    /// Depth-axis block. `0` = the micro-kernel spans the full depth in
    /// registers (the bit-exactness convention); nonzero only where the
    /// block is a pure read-locality hint.
    pub kc: usize,
    /// Right-operand panel width streamed through the micro-kernel
    /// (the fused-conv column-panel width).
    pub nc: usize,
    /// Micro-kernel register rows.
    pub mr: usize,
    /// Micro-kernel register columns.
    pub nr: usize,
}

/// Packed-panel GEMM: both operands repacked into `mr`/`nr` strips, a
/// 4×8 register micro-kernel spanning the full depth, with pack-time
/// zero-row skip flags (the bit-plane adjoint fast path).
pub static PANEL_F32: Blueprint = Blueprint {
    name: "panel_f32",
    mc: 64,
    kc: 0,
    nc: 0,
    mr: 4,
    nr: 8,
};

/// The historical blocked loop: no packing, no register tiling, a
/// 64-row stripe of the right operand kept hot per task (read-locality
/// blocking only — accumulation order is unchanged by `kc` here).
pub static BLOCKED_KC64: Blueprint = Blueprint {
    name: "blocked_kc64",
    mc: 0,
    kc: 64,
    nc: 0,
    mr: 1,
    nr: 1,
};

/// Row-dot kernels for the fused-transpose gradient shapes
/// (`matmul_tn` / `matmul_nt`): column-strided or row-dot loops with
/// the per-element zero skip the bit-plane adjoint relies on.
pub static ROWDOT_F32: Blueprint = Blueprint {
    name: "rowdot_f32",
    mc: 0,
    kc: 0,
    nc: 0,
    mr: 1,
    nr: 1,
};

/// Vector×matrix / matrix×vector: one operand is a single row, tasks
/// carve the other axis.
pub static VECMAT_F32: Blueprint = Blueprint {
    name: "vecmat_f32",
    mc: 0,
    kc: 0,
    nc: 0,
    mr: 1,
    nr: 1,
};

/// Fused im2col convolution: the weight matrix packed into `mr` strips
/// once per call, column panels of `nc` output positions gathered and
/// streamed straight through the GEMM micro-kernel — the full column
/// matrix is never materialized.
pub static COLSTREAM_F32: Blueprint = Blueprint {
    name: "colstream_f32",
    mc: 0,
    kc: 0,
    nc: 64,
    mr: 4,
    nr: 8,
};

/// Materialized im2col convolution: the per-sample column matrix built
/// in scratch, then one blocked GEMM over it (the historical path, kept
/// for tiny spatial extents where a panel is the whole matrix anyway).
pub static IM2COL_F32: Blueprint = Blueprint {
    name: "im2col_f32",
    mc: 0,
    kc: 64,
    nc: 0,
    mr: 1,
    nr: 1,
};

/// u64 bit-plane lanes (`csq_core::bitplane`): weights transposed into
/// 64-wide bit lanes, AND/popcount accumulation. Listed here so the
/// serve executor and the obs profiler tag bit-plane ops with the same
/// blueprint vocabulary as the float routines.
pub static LANES_U64: Blueprint = Blueprint {
    name: "lanes_u64",
    mc: 0,
    kc: 0,
    nc: 0,
    mr: 1,
    nr: 64,
};

/// Dense integer kernels (`csq_core::qinfer`): scalar `i64`
/// accumulation over dense codes, no tiling.
pub static DENSE_I64: Blueprint = Blueprint {
    name: "dense_i64",
    mc: 0,
    kc: 0,
    nc: 0,
    mr: 1,
    nr: 1,
};

/// Unblocked scalar float ops (activations, pooling, the float
/// fallback): the "no tiling at all" blueprint.
pub static SCALAR_F32: Blueprint = Blueprint {
    name: "scalar_f32",
    mc: 0,
    kc: 0,
    nc: 0,
    mr: 1,
    nr: 1,
};

/// Every blueprint, for profile-file validation and the selector dump.
pub static ALL: &[&Blueprint] = &[
    &PANEL_F32,
    &BLOCKED_KC64,
    &ROWDOT_F32,
    &VECMAT_F32,
    &COLSTREAM_F32,
    &IM2COL_F32,
    &LANES_U64,
    &DENSE_I64,
    &SCALAR_F32,
];

/// Looks a blueprint up by its stable name (profile-file validation).
pub fn by_name(name: &str) -> Option<&'static Blueprint> {
    ALL.iter().copied().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        for (i, a) in ALL.iter().enumerate() {
            assert_eq!(by_name(a.name), Some(*a));
            for b in ALL.iter().skip(i + 1) {
                assert_ne!(a.name, b.name, "duplicate blueprint name");
            }
        }
        assert_eq!(by_name("no_such_blueprint"), None);
    }

    #[test]
    fn register_blocks_are_positive() {
        for b in ALL {
            assert!(
                b.mr >= 1 && b.nr >= 1,
                "{} has a zero register block",
                b.name
            );
        }
    }
}
