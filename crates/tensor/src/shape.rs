//! Shape algebra for dense tensors.

use serde::{Deserialize, Serialize};

/// The extents of a tensor along each axis, in row-major order.
///
/// A `Shape` is a thin wrapper over a `Vec<usize>` that adds the small
/// amount of algebra the rest of the workspace needs: element counts,
/// row-major strides and flat-index conversion.
///
/// # Example
///
/// ```
/// use csq_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.flat_index(&[1, 2, 3]), 23);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// A scalar (rank-0) shape with a single element.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The extents along each axis.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent along axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides (in elements, not bytes).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx.len() != rank()` or any coordinate is out of range
    /// (debug builds only for the range check).
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let strides = self.strides();
        let mut flat = 0;
        for (i, (&coord, &stride)) in idx.iter().zip(strides.iter()).enumerate() {
            debug_assert!(coord < self.0[i], "index {coord} out of range on axis {i}");
            flat += coord * stride;
        }
        flat
    }

    /// Returns `true` when the two shapes are elementwise-compatible,
    /// i.e. identical.
    pub fn same_as(&self, other: &Shape) -> bool {
        self == other
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::scalar().numel(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }

    #[test]
    fn numel_of_empty_axis_is_zero() {
        assert_eq!(Shape::new(&[3, 0, 2]).numel(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s1 = Shape::new(&[5]);
        assert_eq!(s1.strides(), vec![1]);
    }

    #[test]
    fn flat_index_round_trip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let flat = s.flat_index(&[i, j, k]);
                    assert!(flat < s.numel());
                    assert!(seen.insert(flat), "duplicate flat index");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    #[should_panic(expected = "index rank mismatch")]
    fn flat_index_rank_mismatch_panics() {
        Shape::new(&[2, 2]).flat_index(&[1]);
    }

    #[test]
    fn display_formats_like_slice() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let v = vec![4usize, 5];
        let s: Shape = v.clone().into();
        assert_eq!(s.dims(), &[4, 5]);
        let s2: Shape = v.as_slice().into();
        assert_eq!(s, s2);
    }
}
