//! Random tensor initializers.
//!
//! All initializers take an explicit `Rng` so experiments are exactly
//! reproducible from a seed (the workspace standardizes on
//! `rand_chacha::ChaCha8Rng`, whose stream is stable across platforms and
//! crate versions).

use crate::Tensor;
use rand::Rng;

/// Uniformly distributed tensor on `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform<R: Rng>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Tensor {
    assert!(lo < hi, "uniform requires lo < hi");
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, dims)
}

/// Normally distributed tensor with the given mean and standard deviation
/// (Box–Muller; two draws per sample for simplicity).
///
/// # Panics
///
/// Panics if `std` is negative.
pub fn normal<R: Rng>(dims: &[usize], mean: f32, std: f32, rng: &mut R) -> Tensor {
    assert!(std >= 0.0, "normal requires std >= 0");
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|_| {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            mean + std * z
        })
        .collect();
    Tensor::from_vec(data, dims)
}

/// Kaiming / He normal initialization for a conv weight `[OC, IC, KH, KW]`
/// or linear weight `[OUT, IN]`: `std = sqrt(2 / fan_in)`.
///
/// # Panics
///
/// Panics if `dims` has rank < 2.
pub fn kaiming_normal<R: Rng>(dims: &[usize], rng: &mut R) -> Tensor {
    assert!(dims.len() >= 2, "kaiming init requires rank >= 2");
    let fan_in: usize = dims[1..].iter().product();
    let std = (2.0 / fan_in as f32).sqrt();
    normal(dims, 0.0, std, rng)
}

/// Kaiming / He uniform initialization: `bound = sqrt(6 / fan_in)`.
///
/// # Panics
///
/// Panics if `dims` has rank < 2.
pub fn kaiming_uniform<R: Rng>(dims: &[usize], rng: &mut R) -> Tensor {
    assert!(dims.len() >= 2, "kaiming init requires rank >= 2");
    let fan_in: usize = dims[1..].iter().product();
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(dims, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let t = uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform(&[32], -1.0, 1.0, &mut ChaCha8Rng::seed_from_u64(7));
        let b = uniform(&[32], -1.0, 1.0, &mut ChaCha8Rng::seed_from_u64(7));
        assert!(a.approx_eq(&b, 0.0));
        let c = uniform(&[32], -1.0, 1.0, &mut ChaCha8Rng::seed_from_u64(8));
        assert!(!a.approx_eq(&c, 0.0));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = normal(&[20000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
        assert!(t.all_finite());
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let small_fan = kaiming_normal(&[8, 4], &mut rng);
        let big_fan = kaiming_normal(&[8, 4096], &mut rng);
        assert!(small_fan.max_abs() > big_fan.max_abs());
        let u = kaiming_uniform(&[16, 9], &mut rng);
        let bound = (6.0f32 / 9.0).sqrt();
        assert!(u.iter().all(|&v| v.abs() <= bound));
    }
}
