//! A corrupt `CSQ_KERNEL_PROFILE` must degrade to the static table with
//! a typed error — selection keeps working and nothing panics.
//!
//! The profile is read once per process (`OnceLock`), so this file
//! holds a single test that sets the environment variable before the
//! first selector call; pure `Profile::parse`/`load` error cases ride
//! along since they don't touch the global.

use csq_tensor::selector::{self, Profile, ProfileError};

#[test]
fn corrupt_env_profile_falls_back_to_static_table_without_panicking() {
    let path = std::env::temp_dir().join(format!("csq_profile_bad_{}.txt", std::process::id()));
    std::fs::write(
        &path,
        "not a profile\nmatmul 8 8 8 packed_panel panel_f32\n",
    )
    .expect("write temp profile");
    std::env::set_var("CSQ_KERNEL_PROFILE", &path);

    // The failure is surfaced as a typed error, not a panic.
    let err = selector::profile_status().expect_err("bad header must be a load error");
    assert!(
        matches!(err, ProfileError::BadHeader { .. }),
        "unexpected error: {err}"
    );

    // Selection still works and equals the static table everywhere.
    for op in selector::FLOAT_OPS.iter().copied() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (8, 8, 8),
            (64, 64, 64),
            (1, 512, 7),
        ] {
            assert_eq!(
                selector::select(op, m, k, n),
                selector::static_select(op, m, k, n),
                "{} {m}x{k}x{n}",
                op.name()
            );
        }
    }

    std::fs::remove_file(&path).ok();

    // Every corruption class maps to its own typed ProfileError.
    let missing = Profile::load("/nonexistent/kernel.profile").expect_err("missing file");
    assert!(matches!(missing, ProfileError::Io { .. }), "{missing}");

    let short = Profile::parse("csq-kernel-profile v1\nmatmul 8 8 packed_panel panel_f32\n")
        .expect_err("five fields");
    assert!(
        matches!(short, ProfileError::BadLine { line: 2, .. }),
        "{short}"
    );

    let wrong_routine =
        Profile::parse("csq-kernel-profile v1\nmatvec 4 4 1 blocked blocked_kc64\n")
            .expect_err("routine not allowed for op");
    assert!(
        matches!(
            wrong_routine,
            ProfileError::IncompatibleRoutine { line: 2, .. }
        ),
        "{wrong_routine}"
    );

    let wrong_blueprint =
        Profile::parse("csq-kernel-profile v1\nmatmul 8 8 8 packed_panel blocked_kc64\n")
            .expect_err("blueprint must match routine");
    assert!(
        matches!(wrong_blueprint, ProfileError::BadLine { line: 2, .. }),
        "{wrong_blueprint}"
    );
}
