//! End-to-end test of `CSQ_KERNEL_PROFILE` loading: a valid profile
//! file overrides exactly the shapes it names, everything else falls
//! through to the static table, and the same profile always produces
//! the same selections — with bit-identical outputs either way.
//!
//! The profile is read once per process (`OnceLock`), so this file
//! holds a single test that sets the environment variable before the
//! first selector call.

use csq_tensor::routines::RoutineKind;
use csq_tensor::selector::{self, FloatOp};
use csq_tensor::Tensor;

const PROFILE: &str = "csq-kernel-profile v1
# override a shape the static table would send to the blocked kernel
matmul 8 8 8 packed_panel panel_f32

matmul_nt 1 6 5 matvec_rows vecmat_f32
";

#[test]
fn env_profile_overrides_named_shapes_deterministically() {
    let path = std::env::temp_dir().join(format!("csq_profile_env_{}.txt", std::process::id()));
    std::fs::write(&path, PROFILE).expect("write temp profile");
    std::env::set_var("CSQ_KERNEL_PROFILE", &path);

    // The profile loaded cleanly.
    let profile = selector::profile_status()
        .expect("valid profile must not be a load error")
        .expect("CSQ_KERNEL_PROFILE was set");
    assert_eq!(profile.len(), 2);

    // The named shape is overridden; a neighboring shape is not.
    let hit = selector::select(FloatOp::MatmulNn, 8, 8, 8);
    assert_eq!(hit.routine, RoutineKind::PackedPanel);
    assert_eq!(hit.blueprint.name, "panel_f32");
    let miss = selector::select(FloatOp::MatmulNn, 9, 8, 8);
    assert_eq!(miss, selector::static_select(FloatOp::MatmulNn, 9, 8, 8));
    assert_eq!(miss.routine, RoutineKind::Blocked);

    // Same profile ⇒ same selections, every time (satellite 4: the
    // selector is a pure function of profile + shape).
    for op in selector::FLOAT_OPS.iter().copied() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (8, 8, 8),
            (17, 33, 5),
            (128, 256, 128),
        ] {
            let first = selector::select(op, m, k, n);
            for _ in 0..3 {
                assert_eq!(
                    selector::select(op, m, k, n),
                    first,
                    "{} {m}x{k}x{n}",
                    op.name()
                );
            }
        }
    }

    // The override changes the routine, not the numbers: the profiled
    // matmul matches the blocked kernel the static table would have
    // used, bit for bit.
    let a = Tensor::from_vec((0..64).map(|i| (i as f32).sin()).collect(), &[8, 8]);
    let b = Tensor::from_vec((0..64).map(|i| (i as f32).cos()).collect(), &[8, 8]);
    assert_eq!(
        a.matmul(&b).data(),
        a.matmul_with(&b, RoutineKind::Blocked).data()
    );

    std::fs::remove_file(&path).ok();
}
