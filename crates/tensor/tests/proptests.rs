//! Property-based tests of the tensor substrate's algebraic invariants.

use csq_tensor::conv::{conv2d, conv2d_backward, conv2d_naive, ConvSpec};
use csq_tensor::pool::{avgpool2d, avgpool2d_backward, maxpool2d, maxpool2d_backward};
use csq_tensor::reduce::{log_softmax_rows, softmax_rows, sum_channels, sum_rows};
use csq_tensor::Tensor;
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-3.0f32..3.0, r * c).prop_map(move |v| (r, c, v))
    })
}

/// Two same-shaped matrices.
fn matrix_pair() -> impl Strategy<Value = (usize, usize, Vec<f32>, Vec<f32>)> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        (
            proptest::collection::vec(-3.0f32..3.0, r * c),
            proptest::collection::vec(-3.0f32..3.0, r * c),
        )
            .prop_map(move |(v, w)| (r, c, v, w))
    })
}

/// `[k, m]` and `[k, n]` matrices sharing their first extent.
fn tn_pair() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>)> {
    (1usize..5, 1usize..5, 1usize..5).prop_flat_map(|(k, m, n)| {
        (
            proptest::collection::vec(-3.0f32..3.0, k * m),
            proptest::collection::vec(-3.0f32..3.0, k * n),
        )
            .prop_map(move |(a, b)| (k, m, n, a, b))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Elementwise addition commutes and subtraction inverts it.
    #[test]
    fn add_commutes_and_sub_inverts((r, c, v, w) in matrix_pair()) {
        let a = Tensor::from_vec(v, &[r, c]);
        let b = Tensor::from_vec(w, &[r, c]);
        prop_assert!(a.add(&b).approx_eq(&b.add(&a), 1e-6));
        prop_assert!(a.add(&b).sub(&b).approx_eq(&a, 1e-4));
    }

    /// Matmul with the identity is the identity map, on both sides.
    #[test]
    fn matmul_identity_law((r, c, v) in small_matrix()) {
        let a = Tensor::from_vec(v, &[r, c]);
        prop_assert!(a.matmul(&Tensor::eye(c)).approx_eq(&a, 1e-5));
        prop_assert!(Tensor::eye(r).matmul(&a).approx_eq(&a, 1e-5));
    }

    /// The fused transpose kernels agree with explicit transposition.
    #[test]
    fn fused_transpose_kernels_agree((k, m, n, av, bv) in tn_pair()) {
        // matmul_tn: a is [k, m], b is [k, n].
        let a = Tensor::from_vec(av, &[k, m]);
        let b = Tensor::from_vec(bv, &[k, n]);
        prop_assert!(a.matmul_tn(&b).approx_eq(&a.transpose2().matmul(&b), 1e-4));
        // matmul_nt: aᵀ is [m, k], bᵀ is [n, k].
        let at = a.transpose2();
        let bt = b.transpose2();
        prop_assert!(at.matmul_nt(&bt).approx_eq(&at.matmul(&bt.transpose2()), 1e-4));
    }

    /// Double transposition is the identity.
    #[test]
    fn transpose_involution((r, c, v) in small_matrix()) {
        let a = Tensor::from_vec(v, &[r, c]);
        prop_assert!(a.transpose2().transpose2().approx_eq(&a, 0.0));
    }

    /// Softmax rows are probability distributions for any input.
    #[test]
    fn softmax_rows_are_distributions((r, c, v) in small_matrix()) {
        let p = softmax_rows(&Tensor::from_vec(v, &[r, c]));
        prop_assert!(p.all_finite());
        for i in 0..r {
            let s: f32 = p.data()[i * c..(i + 1) * c].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(p.data()[i * c..(i + 1) * c].iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    /// exp(log_softmax) equals softmax.
    #[test]
    fn log_softmax_consistency((r, c, v) in small_matrix()) {
        let t = Tensor::from_vec(v, &[r, c]);
        let a = log_softmax_rows(&t).map(f32::exp);
        prop_assert!(a.approx_eq(&softmax_rows(&t), 1e-5));
    }

    /// sum_rows sums to the same total as a flat sum.
    #[test]
    fn reductions_preserve_total((r, c, v) in small_matrix()) {
        let t = Tensor::from_vec(v.clone(), &[r, c]);
        let total: f32 = v.iter().sum();
        prop_assert!((sum_rows(&t).sum() - total).abs() < 1e-3);
        let t4 = Tensor::from_vec(v, &[r, c, 1, 1]);
        prop_assert!((sum_channels(&t4).sum() - total).abs() < 1e-3);
    }

    /// im2col conv agrees with the direct-loop reference for arbitrary
    /// geometry.
    #[test]
    fn conv_matches_reference(
        n in 1usize..3, ic in 1usize..3, oc in 1usize..3,
        hw in 4usize..8, stride in 1usize..3, padding in 0usize..2,
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let x = csq_tensor::init::uniform(&[n, ic, hw, hw], -1.0, 1.0, &mut rng);
        let w = csq_tensor::init::uniform(&[oc, ic, 3, 3], -1.0, 1.0, &mut rng);
        let spec = ConvSpec::new(3, stride, padding);
        prop_assume!(hw + 2 * padding >= 3);
        prop_assert!(conv2d(&x, &w, spec).approx_eq(&conv2d_naive(&x, &w, spec), 1e-3));
    }

    /// The conv backward is the exact adjoint: <Ax, y> == <x, Aᵀy>.
    #[test]
    fn conv_adjoint_identity(
        stride in 1usize..3, padding in 0usize..2, seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let x = csq_tensor::init::uniform(&[1, 2, 6, 6], -1.0, 1.0, &mut rng);
        let w = csq_tensor::init::uniform(&[2, 2, 3, 3], -1.0, 1.0, &mut rng);
        let spec = ConvSpec::new(3, stride, padding);
        prop_assume!(6 + 2 * padding >= 3);
        let y = conv2d(&x, &w, spec);
        let gy = csq_tensor::init::uniform(y.dims(), -1.0, 1.0, &mut rng);
        let (gx, _) = conv2d_backward(&x, &w, &gy, spec);
        let lhs = y.dot(&gy);
        let rhs = x.dot(&gx);
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    /// Max pooling's gradient routes exactly the incoming gradient mass.
    #[test]
    fn maxpool_gradient_mass_conserved(seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let x = csq_tensor::init::uniform(&[2, 2, 6, 6], -1.0, 1.0, &mut rng);
        let out = maxpool2d(&x, 2, 2);
        let gy = csq_tensor::init::uniform(out.output.dims(), 0.0, 1.0, &mut rng);
        let gx = maxpool2d_backward(&gy, &out.argmax, x.dims());
        prop_assert!((gx.sum() - gy.sum()).abs() < 1e-3);
    }

    /// Average pooling is linear: pool(a + b) == pool(a) + pool(b).
    #[test]
    fn avgpool_is_linear(seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a = csq_tensor::init::uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let b = csq_tensor::init::uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let lhs = avgpool2d(&a.add(&b), 2, 2);
        let rhs = avgpool2d(&a, 2, 2).add(&avgpool2d(&b, 2, 2));
        prop_assert!(lhs.approx_eq(&rhs, 1e-5));
        // And its backward conserves mean mass.
        let gy = Tensor::ones(&[1, 2, 2, 2]);
        let gx = avgpool2d_backward(&gy, a.dims(), 2, 2);
        prop_assert!((gx.sum() - gy.sum()).abs() < 1e-4);
    }

    /// Reshape preserves data and slicing+concat is the identity.
    #[test]
    fn reshape_slice_concat_laws((r, c, v) in small_matrix()) {
        prop_assume!(r >= 2);
        let a = Tensor::from_vec(v, &[r, c]);
        let reshaped = a.reshape(&[c, r]);
        prop_assert_eq!(reshaped.data(), a.data());
        let top = a.slice_axis0(0, r / 2);
        let bottom = a.slice_axis0(r / 2, r);
        prop_assert!(Tensor::concat_axis0(&[&top, &bottom]).approx_eq(&a, 0.0));
    }
}
