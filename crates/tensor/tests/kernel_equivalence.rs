//! Kernel-equivalence gate: every routine the selector can pick returns
//! **bit-identical** results on the same operands, at 1 and 4 threads,
//! across awkward shapes (register-block edges, primes, degenerate
//! axes). This is the contract that makes the selector latency-only —
//! a profile override can never change a result.
//!
//! Naive references accumulate in the same `p`-ascending order as the
//! kernels, so equality is exact `==` on the raw f32 bits, not an
//! epsilon comparison.

use csq_tensor::conv::{conv2d, conv2d_naive, conv2d_with_routine, conv2d_with_scratch, ConvSpec};
use csq_tensor::par::{self, ScratchPool};
use csq_tensor::routines::RoutineKind;
use csq_tensor::Tensor;

/// Deterministic non-trivial fill (no RNG needed): varied magnitudes,
/// signs, and exact zeros (so the packed GEMM's zero-skip path runs).
fn fill(dims: &[usize], salt: u64) -> Tensor {
    let n: usize = dims.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(salt);
            let v = ((h >> 33) % 2001) as f32 / 1000.0 - 1.0;
            // Every 7th element exactly zero: exercises skip flags.
            if i % 7 == 3 {
                0.0
            } else {
                v
            }
        })
        .collect();
    Tensor::from_vec(data, dims)
}

fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.at(&[i, p]) * b.at(&[p, j]);
            }
            out.set(&[i, j], acc);
        }
    }
    out
}

/// Shapes chosen to land on every routine and every edge case: 1×1,
/// primes, single-row/column/depth, register-block non-multiples, and
/// one shape big enough for the packed-panel table entry.
const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 7, 1),
    (3, 1, 5),
    (1, 64, 33),
    (5, 3, 1),
    (7, 13, 11),
    (17, 23, 9),
    (33, 65, 17),
    (64, 64, 64),
    (41, 37, 29),
];

#[test]
fn every_matmul_routine_is_bit_identical_across_shapes_and_threads() {
    for &(m, k, n) in GEMM_SHAPES {
        let a = fill(&[m, k], 1);
        let b = fill(&[k, n], 2);
        let want = naive_matmul(&a, &b);
        for threads in [1, 4] {
            par::with_threads(threads, || {
                let selected = a.matmul(&b);
                let blocked = a.matmul_with(&b, RoutineKind::Blocked);
                let packed = a.matmul_with(&b, RoutineKind::PackedPanel);
                assert_eq!(
                    selected.data(),
                    want.data(),
                    "selector path diverged from naive at {m}x{k}x{n}, {threads} threads"
                );
                assert_eq!(
                    blocked.data(),
                    want.data(),
                    "blocked diverged at {m}x{k}x{n}, {threads} threads"
                );
                assert_eq!(
                    packed.data(),
                    want.data(),
                    "packed_panel diverged at {m}x{k}x{n}, {threads} threads"
                );
            });
        }
    }
}

#[test]
fn transpose_variants_are_bit_identical_at_any_thread_count() {
    for &(m, k, n) in GEMM_SHAPES {
        let at = fill(&[k, m], 3);
        let b = fill(&[k, n], 4);
        let a = fill(&[m, k], 5);
        let bt = fill(&[n, k], 6);
        let (tn1, nt1) = par::with_threads(1, || (at.matmul_tn(&b), a.matmul_nt(&bt)));
        let (tn4, nt4) = par::with_threads(4, || (at.matmul_tn(&b), a.matmul_nt(&bt)));
        assert_eq!(tn1.data(), tn4.data(), "tn {m}x{k}x{n}");
        assert_eq!(nt1.data(), nt4.data(), "nt {m}x{k}x{n}");
        // Against the NN kernels on materialized transposes (the NN
        // path is already proven against naive above).
        assert_eq!(
            tn1.data(),
            at.transpose2().matmul(&b).data(),
            "tn vs nn {m}x{k}x{n}"
        );
        assert_eq!(
            nt1.data(),
            a.matmul(&bt.transpose2()).data(),
            "nt vs nn {m}x{k}x{n}"
        );
    }
}

#[test]
fn matvec_routes_through_vecmat_and_matches_matmul_bit_exactly() {
    for &(m, k) in &[(1usize, 1usize), (1, 17), (9, 1), (33, 65), (128, 50)] {
        let a = fill(&[m, k], 7);
        let v = fill(&[k], 8);
        let want = a.matmul(&v.reshape(&[k, 1]));
        for threads in [1, 4] {
            let got = par::with_threads(threads, || a.matvec(&v));
            assert_eq!(got.data(), want.data(), "matvec {m}x{k}, {threads} threads");
        }
    }
}

/// `(n, ic, h, w, oc, kernel, stride, padding)`.
type ConvCase = (usize, usize, usize, usize, usize, usize, usize, usize);

/// Conv geometries: 1×1 everything, strides, padding, a single output
/// position, and spatial extents both below and above the fused
/// routine's panel width (64), including non-multiples of it.
const CONV_CASES: &[ConvCase] = &[
    // (n, ic, h, w, oc, kernel, stride, padding)
    (1, 1, 1, 1, 1, 1, 1, 0),
    (2, 3, 5, 7, 4, 3, 1, 1),
    (1, 2, 9, 9, 3, 3, 2, 0),
    (1, 1, 4, 4, 1, 3, 1, 1),
    (2, 2, 8, 8, 5, 1, 1, 0),
    (1, 3, 12, 11, 6, 3, 1, 1),
    (1, 3, 16, 16, 8, 3, 1, 1),
];

#[test]
fn conv_routines_are_bit_identical_to_naive_at_1_and_4_threads() {
    for &(n, ic, h, w, oc, kernel, stride, padding) in CONV_CASES {
        let spec = ConvSpec::new(kernel, stride, padding);
        let x = fill(&[n, ic, h, w], 9);
        let wt = fill(&[oc, ic, kernel, kernel], 10);
        let want = conv2d_naive(&x, &wt, spec);
        let pool = ScratchPool::new();
        for threads in [1, 4] {
            par::with_threads(threads, || {
                let selected = conv2d(&x, &wt, spec);
                let gemm = conv2d_with_routine(&x, &wt, spec, &pool, RoutineKind::Im2colGemm);
                let fused = conv2d_with_routine(&x, &wt, spec, &pool, RoutineKind::Im2colFused);
                assert_eq!(
                    selected.data(),
                    want.data(),
                    "selector conv diverged at {n}x{ic}x{h}x{w} k{kernel}s{stride}p{padding}, {threads} threads"
                );
                assert_eq!(
                    gemm.data(),
                    want.data(),
                    "im2col_gemm diverged at {n}x{ic}x{h}x{w} k{kernel}s{stride}p{padding}, {threads} threads"
                );
                assert_eq!(
                    fused.data(),
                    want.data(),
                    "im2col_fused diverged at {n}x{ic}x{h}x{w} k{kernel}s{stride}p{padding}, {threads} threads"
                );
            });
        }
        // Scratch reuse with dirty pooled buffers does not perturb results.
        let again = conv2d_with_scratch(&x, &wt, spec, &pool);
        assert_eq!(again.data(), want.data());
    }
}

#[test]
fn zero_weight_planes_take_the_skip_path_bit_exactly() {
    // A weight whose rows contain long zero runs: packing flags those
    // depth rows and the skip micro-kernel must still match the dense
    // result bit-for-bit (and naive, which never skips).
    let (m, k, n) = (19, 70, 23);
    let mut a = fill(&[m, k], 11);
    for i in 0..m {
        for p in 0..k {
            if p % 3 != 1 {
                a.set(&[i, p], 0.0);
            }
        }
    }
    let b = fill(&[k, n], 12);
    let want = naive_matmul(&a, &b);
    for threads in [1, 4] {
        par::with_threads(threads, || {
            assert_eq!(
                a.matmul_with(&b, RoutineKind::PackedPanel).data(),
                want.data()
            );
            assert_eq!(a.matmul_with(&b, RoutineKind::Blocked).data(), want.data());
        });
    }
}
