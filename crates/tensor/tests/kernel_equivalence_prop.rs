//! Property-based kernel-equivalence sweep: random shapes that are
//! deliberately *not* multiples of the blueprint tile extents (MC, KC,
//! NC, MR, NR) must produce bit-identical results across every float
//! routine and across thread counts. Complements the fixed-shape sweep
//! in `kernel_equivalence.rs` with randomized coverage.

use csq_tensor::conv::{conv2d_naive, conv2d_with_routine, ConvSpec};
use csq_tensor::par::{self, ScratchPool};
use csq_tensor::routines::RoutineKind;
use csq_tensor::Tensor;
use proptest::prelude::*;

fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let n = b.dims()[1];
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.at(&[i, p]) * b.at(&[p, j]);
            }
            out.set(&[i, j], acc);
        }
    }
    out
}

/// GEMM operands with shapes spanning degenerate (1) through
/// just-past-register-block extents, including exact zeros so the
/// packed kernel's skip flags fire.
fn gemm_pair() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>)> {
    (1usize..18, 1usize..18, 1usize..18).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(prop_oneof![3 => -3.0f32..3.0, 1 => Just(0.0f32)], m * k),
            proptest::collection::vec(-3.0f32..3.0, k * n),
        )
            .prop_map(move |(a, b)| (m, k, n, a, b))
    })
}

/// Conv inputs small enough for the naive reference, with kernel,
/// stride and padding varied so output extents hit 1 and non-multiples
/// of the fused column-panel width.
fn conv_case() -> impl Strategy<Value = (Tensor, Tensor, ConvSpec)> {
    (
        1usize..3,
        1usize..4,
        3usize..10,
        3usize..10,
        1usize..5,
        1usize..4,
        1usize..3,
        0usize..2,
    )
        .prop_flat_map(|(n, ic, h, w, oc, kernel, stride, padding)| {
            let kernel = kernel.min(h.min(w));
            (
                proptest::collection::vec(-2.0f32..2.0, n * ic * h * w),
                proptest::collection::vec(-2.0f32..2.0, oc * ic * kernel * kernel),
            )
                .prop_map(move |(xv, wv)| {
                    (
                        Tensor::from_vec(xv, &[n, ic, h, w]),
                        Tensor::from_vec(wv, &[oc, ic, kernel, kernel]),
                        ConvSpec::new(kernel, stride, padding),
                    )
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All NN routines equal the naive p-ascending reference bit-for-bit
    /// at 1 and 4 threads.
    #[test]
    fn matmul_routines_bit_identical((m, k, n, av, bv) in gemm_pair()) {
        let a = Tensor::from_vec(av, &[m, k]);
        let b = Tensor::from_vec(bv, &[k, n]);
        let want = naive_matmul(&a, &b);
        for threads in [1usize, 4] {
            par::with_threads(threads, || {
                prop_assert_eq!(a.matmul(&b).data(), want.data());
                prop_assert_eq!(a.matmul_with(&b, RoutineKind::Blocked).data(), want.data());
                prop_assert_eq!(a.matmul_with(&b, RoutineKind::PackedPanel).data(), want.data());
                Ok(())
            })?;
        }
    }

    /// Both conv routines equal `conv2d_naive` bit-for-bit at 1 and 4
    /// threads, regardless of which one the selector would pick.
    #[test]
    fn conv_routines_bit_identical((x, w, spec) in conv_case()) {
        let want = conv2d_naive(&x, &w, spec);
        let pool = ScratchPool::new();
        for threads in [1usize, 4] {
            par::with_threads(threads, || {
                let gemm = conv2d_with_routine(&x, &w, spec, &pool, RoutineKind::Im2colGemm);
                let fused = conv2d_with_routine(&x, &w, spec, &pool, RoutineKind::Im2colFused);
                prop_assert_eq!(gemm.data(), want.data());
                prop_assert_eq!(fused.data(), want.data());
                Ok(())
            })?;
        }
    }
}
