#!/bin/bash
# Regenerates every table and figure of the CSQ paper in sequence and
# logs to bench_results/campaign.log. Build first:
#   cargo build -p csq-bench --release
# Scale via CSQ_* env vars (see BenchScale::from_env).
set -u
cd "$(dirname "$0")"
mkdir -p bench_results
for b in table1 table2 table4 table5 fig2 fig3 fig4 ablations table3 parallel serve; do
  echo "=== RUNNING $b ($(date +%H:%M:%S)) ==="
  ./target/release/$b 2>&1
  echo "=== DONE $b ==="
done
echo "=== CAMPAIGN COMPLETE ==="
