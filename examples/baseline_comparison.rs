//! Head-to-head comparison of every quantization method in the workspace
//! on one dataset — a miniature version of the paper's Table I, runnable
//! in about a minute.
//!
//! All methods share the architecture, initialization stream, optimizer
//! and data; only the weight parameterization differs.
//!
//! ```text
//! cargo run --example baseline_comparison --release
//! ```

use csq_repro::baselines::{bsq_factory, dorefa_factory, lq_factory, ste_uniform_factory};
use csq_repro::csq::prelude::*;
use csq_repro::csq::trainer::evaluate;
use csq_repro::data::{Dataset, SyntheticSpec};
use csq_repro::nn::models::{resnet_cifar, ModelConfig};
use csq_repro::nn::weight::float_factory;
use csq_repro::nn::{Layer, WeightSource};
use csq_repro::tensor::Tensor;

type Factory = Box<dyn FnMut(Tensor) -> Box<dyn WeightSource>>;

fn main() {
    let data = Dataset::synthetic(
        &SyntheticSpec::cifar_like(0)
            .with_samples(24, 24)
            .with_noise(0.8),
    );
    let epochs = 12;

    println!(
        "{:<14} {:>8} {:>12} {:>10}",
        "method", "w-bits", "compression", "accuracy"
    );

    // Methods trained through the generic fit loop.
    let methods: Vec<(&str, Factory, bool)> = vec![
        ("FP", Box::new(float_factory()), false),
        ("STE-Uniform", Box::new(ste_uniform_factory(3)), false),
        ("DoReFa", Box::new(dorefa_factory(3)), false),
        ("LQ-Nets*", Box::new(lq_factory(3)), false),
        ("BSQ", Box::new(bsq_factory(8, 1e-3, 3)), false),
        ("CSQ-Uniform", Box::new(csq_uniform_factory(3)), true),
    ];
    for (name, mut factory, needs_beta) in methods {
        let model_cfg = ModelConfig::cifar_like(8, Some(3), 0);
        let mut model = resnet_cifar(model_cfg, &mut factory, 1);
        let mut cfg = FitConfig::fast(epochs);
        if needs_beta {
            cfg.beta = Some(TemperatureSchedule::paper_default(epochs).with_saturation(0.75));
        }
        fit(&mut model, &data, &cfg, false).expect("baseline training failed");
        model.visit_weight_sources(&mut |src| src.finalize());
        let (_, acc) = evaluate(&mut model, &data.test, 32);
        let stats = model_precision(&mut model);
        println!(
            "{:<14} {:>8.1} {:>11.1}x {:>9.1}%",
            name,
            stats.avg_bits,
            stats.compression_ratio(),
            acc * 100.0
        );
    }

    // Full CSQ through Algorithm 1, at two budgets.
    for target in [3.0f32, 2.0] {
        let mut factory = csq_factory(8);
        let model_cfg = ModelConfig::cifar_like(8, Some(3), 0);
        let mut model = resnet_cifar(model_cfg, &mut factory, 1);
        let report = CsqTrainer::new(CsqConfig::fast(target).with_epochs(epochs))
            .train(&mut model, &data)
            .expect("CSQ training failed");
        println!(
            "{:<14} {:>8.1} {:>11.1}x {:>9.1}%",
            format!("CSQ T{target}"),
            report.final_avg_bits,
            report.final_compression,
            report.final_test_accuracy * 100.0
        );
    }
}
