//! The full Algorithm-1 pipeline with a finetuning phase, side by side
//! with a full-precision reference — the workload the paper's ImageNet
//! experiments run (scaled down).
//!
//! Prints per-epoch telemetry so the bi-level dynamics are visible: the
//! temperature β rising, the average precision being pulled toward the
//! budget, and the finetune phase improving accuracy with the scheme
//! frozen.
//!
//! ```text
//! cargo run --example mixed_precision_training --release
//! ```

use csq_repro::csq::prelude::*;
use csq_repro::csq::trainer::{fit, FitConfig};
use csq_repro::data::{Dataset, SyntheticSpec};
use csq_repro::nn::models::{resnet_cifar, ModelConfig};
use csq_repro::nn::weight::float_factory;

fn main() {
    let data = Dataset::synthetic(
        &SyntheticSpec::cifar_like(7)
            .with_samples(24, 12)
            .with_noise(0.8),
    );

    // --- Full-precision reference -------------------------------------
    let mut factory = float_factory();
    let model_cfg = ModelConfig::cifar_like(8, None, 7);
    let mut fp_model = resnet_cifar(model_cfg, &mut factory, 1);
    let fp_history =
        fit(&mut fp_model, &data, &FitConfig::fast(12), false).expect("FP training failed");
    let fp_acc = fp_history.last().map(|h| h.test_acc).unwrap_or(0.0);
    println!("FP reference: {:.2}% accuracy\n", fp_acc * 100.0);

    // --- CSQ with finetuning ------------------------------------------
    let mut factory = csq_factory(8);
    let model_cfg = ModelConfig::cifar_like(8, Some(4), 7);
    let mut model = resnet_cifar(model_cfg, &mut factory, 1);
    let cfg = CsqConfig::fast(2.0).with_epochs(12).with_finetune(6);
    let report = CsqTrainer::new(cfg)
        .train(&mut model, &data)
        .expect("CSQ training failed");

    println!(
        "{:<6} {:>5} {:>8} {:>9} {:>9} {:>7} {:>8}",
        "phase", "epoch", "loss", "trainAcc", "testAcc", "bits", "beta"
    );
    for h in &report.history {
        println!(
            "{:<6} {:>5} {:>8.3} {:>8.1}% {:>8.1}% {:>7.2} {:>8.1}",
            if h.finetune { "tune" } else { "csq" },
            h.epoch,
            h.loss,
            h.train_acc * 100.0,
            h.test_acc * 100.0,
            h.avg_bits,
            h.beta,
        );
    }
    println!(
        "\nCSQ final (exactly quantized): {:.2}% at {:.2} bits ({:.1}x smaller than FP32)",
        report.final_test_accuracy * 100.0,
        report.final_avg_bits,
        report.final_compression,
    );
    println!(
        "accuracy retained vs FP: {:.1}%",
        report.final_test_accuracy / fp_acc.max(1e-6) * 100.0
    );
}
