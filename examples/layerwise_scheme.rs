//! Extract, serialize and reload a discovered mixed-precision scheme —
//! what a deployment pipeline would do with CSQ's output (the per-layer
//! assignments of Figure 4).
//!
//! ```text
//! cargo run --example layerwise_scheme --release
//! ```

use csq_repro::csq::prelude::*;
use csq_repro::csq::PackedModel;
use csq_repro::data::{Dataset, SyntheticSpec};
use csq_repro::nn::models::{resnet_cifar, ModelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = Dataset::synthetic(
        &SyntheticSpec::cifar_like(5)
            .with_samples(24, 12)
            .with_noise(0.8),
    );
    let mut factory = csq_factory(8);
    let model_cfg = ModelConfig::cifar_like(8, Some(3), 5);
    let mut model = resnet_cifar(model_cfg, &mut factory, 1);
    let report = CsqTrainer::new(CsqConfig::fast(2.0).with_epochs(12))
        .train(&mut model, &data)
        .expect("CSQ training failed");
    let scheme = &report.scheme;

    // A human-readable view: per-layer precision with bar charts and the
    // per-bit keep mask (LSB on the left).
    println!(
        "layer-wise scheme at {:.2} average bits:\n",
        scheme.avg_bits
    );
    let path_width = scheme
        .layers
        .iter()
        .map(|l| l.path.len())
        .max()
        .unwrap_or(0);
    for layer in &scheme.layers {
        let bar = "#".repeat(layer.bits as usize);
        let mask = layer
            .mask
            .as_ref()
            .map(|m| {
                m.iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect::<String>()
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<path_width$} ({:>6} params): {:<8} {:>2.0} bits  mask(LSB→MSB) {}",
            layer.path, layer.numel, bar, layer.bits, mask
        );
    }

    // Fixed-point packing: the deployment artifact the paper's
    // compression numbers describe (integer codes + one scale per layer).
    let packed = PackedModel::pack(&mut model)?;
    println!(
        "\npacked model: {} bytes vs {} bytes at FP32 ({:.1}x smaller on disk)",
        packed.size_bytes(),
        packed.fp32_size_bytes(),
        packed.compression()
    );
    // Reconstruction from integer codes is exact.
    for pw in &packed.layers {
        assert!(pw.unpack().all_finite(), "layer {} reconstructs", pw.path);
    }

    // Round-trip through JSON, as a deployment pipeline would.
    let json = scheme.to_json();
    let path = std::env::temp_dir().join("csq_scheme.json");
    std::fs::write(&path, &json)?;
    let reloaded = QuantScheme::from_json(&std::fs::read_to_string(&path)?)?;
    assert_eq!(&reloaded, scheme);
    println!("\nscheme saved to {} and reloaded intact", path.display());
    println!(
        "model: {:.2}% accuracy, {:.1}x compression",
        report.final_test_accuracy * 100.0,
        report.final_compression
    );
    Ok(())
}
