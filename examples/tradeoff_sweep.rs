//! Explore the accuracy–model-size trade-off by sweeping the CSQ target
//! precision (the experiment behind Table V of the paper): one knob —
//! the bit budget — controls the whole frontier.
//!
//! ```text
//! cargo run --example tradeoff_sweep --release
//! ```

use csq_repro::csq::prelude::*;
use csq_repro::data::{Dataset, SyntheticSpec};
use csq_repro::nn::models::{resnet_cifar, ModelConfig};

fn main() {
    let data = Dataset::synthetic(
        &SyntheticSpec::cifar_like(3)
            .with_samples(24, 12)
            .with_noise(0.8),
    );

    println!(
        "{:>7} {:>10} {:>12} {:>10}",
        "target", "achieved", "compression", "accuracy"
    );
    let mut frontier: Vec<(f32, f32)> = Vec::new();
    for target in [1.0f32, 2.0, 3.0, 4.0, 5.0] {
        let mut factory = csq_factory(8);
        let model_cfg = ModelConfig::cifar_like(8, Some(3), 3);
        let mut model = resnet_cifar(model_cfg, &mut factory, 1);
        let cfg = CsqConfig::fast(target).with_epochs(12);
        let report = CsqTrainer::new(cfg)
            .train(&mut model, &data)
            .expect("CSQ training failed");
        println!(
            "{:>6}b {:>9.2}b {:>11.1}x {:>9.2}%",
            target,
            report.final_avg_bits,
            report.final_compression,
            report.final_test_accuracy * 100.0
        );
        frontier.push((report.final_compression, report.final_test_accuracy));
    }

    // A frontier summary: how much accuracy each extra 2x of compression
    // costs, walking from the least to the most compressed point.
    frontier.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    println!("\nfrontier (compression -> accuracy):");
    for (comp, acc) in &frontier {
        let bar = "#".repeat((acc * 40.0) as usize);
        println!("{comp:>6.1}x  {bar} {:.1}%", acc * 100.0);
    }
}
