//! Fixed-point deployment demo: finalize a CSQ model, pack its weights
//! into integer codes, and run a convolution with pure integer
//! arithmetic — the path the paper's introduction motivates ("fixed-point
//! arithmetic units ... significant speedup").
//!
//! ```text
//! cargo run --example integer_inference --release
//! ```

use csq_repro::csq::prelude::*;
use csq_repro::csq::qinfer::{conv2d_integer, QuantizedActivations};
use csq_repro::csq::PackedModel;
use csq_repro::nn::models::{resnet_cifar, ModelConfig};
use csq_repro::nn::Layer;
use csq_repro::tensor::conv::{conv2d, ConvSpec};
use csq_repro::tensor::init;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CSQ-parameterized model, finalized straight away (in practice it
    // would be trained first — see the quickstart).
    let mut factory = csq_factory(8);
    let mut model = resnet_cifar(ModelConfig::cifar_like(8, None, 0), &mut factory, 1);
    model.visit_weight_sources(&mut |s| s.finalize());

    // Pack every weight tensor into integer codes + one scale per layer.
    let packed = PackedModel::pack(&mut model)?;
    println!(
        "packed {} layers: {} bytes (FP32 would be {} bytes, {:.1}x larger)",
        packed.layers.len(),
        packed.size_bytes(),
        packed.fp32_size_bytes(),
        packed.compression(),
    );

    // Run the stem convolution two ways: float reference vs integer
    // arithmetic on 8-bit activation codes.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let x = init::uniform(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
    let stem = &packed.layers[0];
    let spec = ConvSpec::new(3, 1, 1);

    let xq = QuantizedActivations::quantize(&x)?;
    let y_int = conv2d_integer(&xq, stem, spec)?;
    let y_float = conv2d(&x, &stem.unpack(), spec);

    let max_err = y_int
        .iter()
        .zip(y_float.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "stem conv: integer vs float max deviation {:.5} (activation step {:.5})",
        max_err, xq.step
    );
    assert!(max_err < 0.1, "integer path should track the float path");

    // The packed representation reconstructs the trained weights exactly.
    let back = stem.unpack();
    println!(
        "stem weights reconstruct exactly from {}-bit codes: max |w| = {:.4}",
        stem.bits,
        back.max_abs()
    );
    Ok(())
}
