//! Quickstart: train a small CNN with CSQ toward a 3-bit average weight
//! budget on the synthetic CIFAR-10 stand-in, then inspect the result.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use csq_repro::csq::prelude::*;
use csq_repro::data::{Dataset, SyntheticSpec};
use csq_repro::nn::models::{resnet_cifar, ModelConfig};

fn main() {
    // 1. A deterministic synthetic 10-class image dataset (the CIFAR-10
    //    stand-in; see DESIGN.md for why the data is synthetic).
    let data = Dataset::synthetic(
        &SyntheticSpec::cifar_like(0)
            .with_samples(24, 12)
            .with_noise(0.8),
    );
    println!(
        "dataset: {} train / {} test images of {:?}",
        data.train.len(),
        data.test.len(),
        &data.train.images.dims()[1..]
    );

    // 2. A ResNet-8 whose every weight tensor is the CSQ bit-level
    //    parameterization (8 bit planes, searched mask).
    let mut factory = csq_factory(8);
    let model_cfg = ModelConfig::cifar_like(8, Some(3), 0);
    let mut model = resnet_cifar(model_cfg, &mut factory, 1);

    // 3. Run Algorithm 1 with a 3-bit average-precision budget.
    let cfg = CsqConfig::fast(3.0).with_epochs(12);
    println!(
        "training with CSQ: {} epochs, lambda {}, target {} bits",
        cfg.epochs, cfg.lambda, cfg.target_bits
    );
    let report = CsqTrainer::new(cfg)
        .train(&mut model, &data)
        .expect("CSQ training failed");

    // 4. The finalized model is exactly quantized; the report carries the
    //    discovered mixed-precision scheme.
    println!(
        "\nfinal: {:.2}% accuracy at {:.2} average bits ({:.1}x compression)",
        report.final_test_accuracy * 100.0,
        report.final_avg_bits,
        report.final_compression,
    );
    println!("\ndiscovered scheme:\n{}", report.scheme);
}
