csq-kernel-profile v1
# Sample autotune profile for the csq-tensor kernel selector, in the
# committed v1 format (see DESIGN.md §15). Load it by exporting
#
#   CSQ_KERNEL_PROFILE=profiles/kernel.profile
#
# before the process starts; it is read once and overrides the static
# selector table for exactly the (op, m, k, n) shapes listed here.
# Every routine is bit-identical on the same operands, so entries can
# only change latency, never results.
#
# op        m   k    n    routine       blueprint
matmul      128 256  128  packed_panel  panel_f32
matmul      64  64   64   packed_panel  panel_f32
matmul      8   8    8    blocked       blocked_kc64
# measured: packing overhead dominates at this border shape on the
# reference machine, so it overrides the static table's packed pick
matmul      16  32   16   blocked       blocked_kc64
matmul      1   256  128  vecmat_cols   vecmat_f32
matmul_nt   1   128  256  matvec_rows   vecmat_f32
conv2d      8   27   256  im2col_fused  colstream_f32
conv2d      16  72   64   im2col_fused  colstream_f32
conv2d      8   27   16   im2col_gemm   im2col_f32
