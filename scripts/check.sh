#!/usr/bin/env bash
# Repo-wide gate: formatting, lints (warnings are errors), release build
# and the full test suite. Run before pushing; CI runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy csq-obs (-D warnings)"
cargo clippy -p csq-obs --all-targets -- -D warnings

echo "==> cargo clippy csq-tensor (-D warnings)"
cargo clippy -p csq-tensor --all-targets -- -D warnings

echo "==> cargo clippy csq-fleet (-D warnings)"
cargo clippy -p csq-fleet --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> selector determinism gate (routine mix must be identical run-to-run)"
dump_dir="$(mktemp -d)"
cargo run -q --release -p csq-tensor --bin selector_dump > "$dump_dir/static1.txt"
cargo run -q --release -p csq-tensor --bin selector_dump > "$dump_dir/static2.txt"
diff "$dump_dir/static1.txt" "$dump_dir/static2.txt" \
  || { echo "FAIL: selector dump differs between runs (static table)"; exit 1; }
CSQ_KERNEL_PROFILE=profiles/kernel.profile \
  cargo run -q --release -p csq-tensor --bin selector_dump > "$dump_dir/prof1.txt"
CSQ_KERNEL_PROFILE=profiles/kernel.profile \
  cargo run -q --release -p csq-tensor --bin selector_dump > "$dump_dir/prof2.txt"
diff "$dump_dir/prof1.txt" "$dump_dir/prof2.txt" \
  || { echo "FAIL: selector dump differs between runs (committed profile)"; exit 1; }
grep -q "^# profile: loaded" "$dump_dir/prof1.txt" \
  || { echo "FAIL: committed profiles/kernel.profile did not load"; exit 1; }
rm -rf "$dump_dir"
echo "    selector dump stable across runs, with and without the committed profile"

echo "==> serve chaos suite (deterministic fault drills)"
cargo test -q --release --test serve_chaos

echo "==> flight-recorder chaos drill (postmortem must be well-formed JSONL)"
postmortem_dir="$(mktemp -d)"
trap 'rm -rf "$postmortem_dir"' EXIT
CSQ_POSTMORTEM_DIR="$postmortem_dir" cargo test -q --release --test serve_chaos \
  flight_recorder_postmortem_names_worker_trace_ids_and_restart
dumps=("$postmortem_dir"/postmortem-*.jsonl)
[ -e "${dumps[0]}" ] || { echo "FAIL: chaos drill produced no postmortem dump"; exit 1; }
for dump in "${dumps[@]}"; do
  if grep -qv '^{' "$dump"; then
    echo "FAIL: $dump contains a non-JSON line"
    exit 1
  fi
done
echo "    $(ls "$postmortem_dir" | wc -l) postmortem dump(s), all well-formed"

echo "==> bitplane bit-exactness gate (proptest equivalence + serve e2e)"
cargo test -q --release --test bitplane_equivalence
cargo test -q --release --test serve_end_to_end \
  bitplane_kernels_are_bit_exact_against_integer_at_1_and_4_threads

echo "==> fleet chaos drill (replica-group kill + corrupted registry artifact)"
# Kills a whole replica group under two-tenant load (in-flight requests
# must drain with answers, later submissions fail fast with typed
# ModelDown, the sibling model stays bit-exact, redeploy recovers), and
# corrupts the newest registry artifact on disk (the scan must record a
# typed fault and fall back to the newest healthy version). Any hang,
# panic, or cross-model contamination fails the gate.
cargo test -q --release --test fleet_chaos
cargo test -q --release --test fleet_end_to_end

echo "==> serve smoke load (2s closed loop + overload/bits/fleet sweeps)"
# The serve bench asserts bitplane/auto outputs are bit-identical to the
# integer path at every swept width, then drives the swept artifacts as
# a multi-tenant fleet; a mismatch or untyped fleet error fails the
# whole gate.
CSQ_EPOCHS=1 CSQ_TRAIN_PER_CLASS=2 CSQ_TEST_PER_CLASS=2 CSQ_WIDTH=4 \
  CSQ_SERVE_SECONDS=2 CSQ_SERVE_OVERLOAD_SECONDS=0.5 ./target/release/serve

echo "All checks passed."
