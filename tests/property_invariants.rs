//! Property-based tests of the core quantization invariants, across
//! crates.

use csq_repro::baselines::{BsqWeight, DorefaWeight, LqWeight, SteUniformWeight};
use csq_repro::csq::{
    temp_sigmoid, BitQuantizer, PackedModel, PackedWeight, QuantMode, TemperatureSchedule,
};
use csq_repro::nn::{Linear, WeightSource};
use csq_repro::tensor::Tensor;
use proptest::prelude::*;

fn weight_strategy() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, 4..64)
}

/// Random packed weights across precisions 1..=8 and 1–3-axis shapes:
/// codes bounded by the precision's signed range, arbitrary grid step.
fn packed_weight_strategy() -> impl Strategy<Value = PackedWeight> {
    (1u32..=8, proptest::collection::vec(1usize..6, 1..4), 1e-4f32..0.5)
        .prop_flat_map(|(bits, dims, step)| {
            let n: usize = dims.iter().product();
            let hi = (1i32 << bits) - 1;
            (
                proptest::collection::vec(-hi..=hi, n..=n),
                Just(dims),
                Just(step),
                Just(bits),
            )
        })
        .prop_map(|(codes, dims, step, bits)| PackedWeight {
            path: "weight".to_string(),
            codes,
            step,
            dims,
            bits: bits as f32,
        })
}

/// A random linear weight matrix `[out, in]` for model-level packing.
fn linear_weight_strategy() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..7, 1usize..7).prop_flat_map(|(out_f, in_f)| {
        (
            Just(out_f),
            Just(in_f),
            proptest::collection::vec(-2.0f32..2.0, out_f * in_f),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Finalized CSQ weights lie exactly on the quantization grid for
    /// any input weight tensor.
    #[test]
    fn finalized_csq_weights_on_grid(w in weight_strategy()) {
        let t = Tensor::from_slice(&w);
        let mut q = BitQuantizer::from_float(&t, 8, QuantMode::Csq);
        q.finalize();
        let step = q.quant_step().unwrap();
        let m = q.materialize();
        for &v in m.iter() {
            let k = v / step;
            prop_assert!((k - k.round()).abs() < 1e-2, "{} off grid {}", v, step);
        }
    }

    /// The hard precision count is always within [0, bits], soft
    /// precision within (0, bits), and both agree after finalization.
    #[test]
    fn precision_counts_bounded(w in weight_strategy(), bits in 1usize..9) {
        let t = Tensor::from_slice(&w);
        let mut q = BitQuantizer::from_float(&t, bits, QuantMode::Csq);
        let hard = q.precision().unwrap();
        let soft = q.soft_precision().unwrap();
        prop_assert!((0.0..=bits as f32).contains(&hard));
        prop_assert!(soft > 0.0 && soft < bits as f32 + 1e-3);
        q.finalize();
        prop_assert_eq!(q.precision().unwrap(), q.soft_precision().unwrap());
    }

    /// Materialization never produces NaN/Inf at any temperature.
    #[test]
    fn materialization_always_finite(w in weight_strategy(), beta in 0.1f32..500.0) {
        let t = Tensor::from_slice(&w);
        let mut q = BitQuantizer::from_float(&t, 8, QuantMode::Csq);
        q.set_beta(beta);
        prop_assert!(q.materialize().all_finite());
    }

    /// The materialized magnitude is bounded by the scale: |W| ≤ s for
    /// every gate configuration (the bit sum is at most 2^n − 1).
    #[test]
    fn materialized_magnitude_bounded_by_scale(w in weight_strategy()) {
        let t = Tensor::from_slice(&w);
        let mut q = BitQuantizer::from_float(&t, 8, QuantMode::Csq);
        let s = q.scale();
        let m = q.materialize();
        prop_assert!(m.max_abs() <= s + 1e-5);
    }

    /// STE-Uniform quantization error is bounded by half a grid step per
    /// element (for values inside the clip range).
    #[test]
    fn ste_quantization_error_bounded(w in weight_strategy(), bits in 2usize..9) {
        let t = Tensor::from_slice(&w);
        let mut q = SteUniformWeight::from_float(&t, bits);
        let m = q.materialize();
        let step = q.quant_step().unwrap();
        for (&orig, &quant) in t.iter().zip(m.iter()) {
            prop_assert!((orig - quant).abs() <= step * 0.5 + 1e-5);
        }
    }

    /// DoReFa output is always inside [-1, 1].
    #[test]
    fn dorefa_output_bounded(w in weight_strategy(), bits in 1usize..9) {
        let t = Tensor::from_slice(&w);
        let mut q = DorefaWeight::from_float(&t, bits);
        let m = q.materialize();
        prop_assert!(m.max_abs() <= 1.0 + 1e-5);
    }

    /// LQ assignment is optimal: no element could move to a different
    /// level with lower error.
    #[test]
    fn lq_assigns_nearest_level(w in weight_strategy(), bits in 1usize..4) {
        let t = Tensor::from_slice(&w);
        let mut q = LqWeight::from_float(&t, bits);
        let m = q.materialize();
        let levels = q.levels();
        for (&orig, &assigned) in t.iter().zip(m.iter()) {
            let err = (orig - assigned).abs();
            for &l in &levels {
                prop_assert!(err <= (orig - l).abs() + 1e-4);
            }
        }
    }

    /// BSQ's MSB pruning is weight-preserving by construction whenever it
    /// fires.
    #[test]
    fn bsq_pruning_preserves_weights(w in weight_strategy()) {
        let t = Tensor::from_slice(&w);
        let mut q = BsqWeight::from_float(&t, 8, 0.0, 1);
        let before = q.materialize();
        q.on_epoch_end(0); // prunes only all-zero MSB planes
        let after = q.materialize();
        prop_assert!(after.approx_eq(&before, 1e-5));
    }

    /// The temperature schedule is monotone non-decreasing and hits its
    /// extremes.
    #[test]
    fn temperature_schedule_monotone(total in 2usize..300) {
        let s = TemperatureSchedule::paper_default(total);
        let mut prev = 0.0f32;
        for e in 0..total {
            let b = s.beta_at(e);
            prop_assert!(b >= prev);
            prev = b;
        }
        prop_assert!((s.beta_at(0) - 1.0).abs() < 1e-5);
        prop_assert!((s.beta_at(total - 1) - 200.0).abs() < 0.1);
    }

    /// σ(βx) is always a valid gate value and symmetric about 0.5.
    #[test]
    fn gate_is_probability(x in -10.0f32..10.0, beta in 0.01f32..1000.0) {
        let g = temp_sigmoid(x, beta);
        prop_assert!((0.0..=1.0).contains(&g));
        let g_neg = temp_sigmoid(-x, beta);
        prop_assert!((g + g_neg - 1.0).abs() < 1e-5);
    }

    /// PackedWeight codes survive unpack→requantize exactly, for any
    /// precision 1..=8, shape, and grid step: `round(unpack/step)`
    /// recovers every code bit-for-bit, and the serialized form
    /// round-trips without loss.
    #[test]
    fn packed_weight_codes_round_trip_exactly(pw in packed_weight_strategy()) {
        let back = pw.unpack();
        prop_assert_eq!(back.dims(), &pw.dims[..]);
        for (&v, &c) in back.iter().zip(pw.codes.iter()) {
            let k = v / pw.step;
            prop_assert!((k - k.round()).abs() < 1e-3, "{v} off grid {}", pw.step);
            prop_assert_eq!(k.round() as i32, c);
        }
        let json = serde_json::to_string(&pw).unwrap();
        let again: PackedWeight = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(again, pw);
    }

    /// Model-level pack→unpack reconstructs the finalized weights for
    /// any shape and precision, and packing is deterministic (a second
    /// pack emits identical codes).
    #[test]
    fn pack_unpack_reconstructs_finalized_weights(
        (out_f, in_f, w) in linear_weight_strategy(),
        bits in 1usize..9,
    ) {
        let t = Tensor::from_vec(w, &[out_f, in_f]);
        let mut q = BitQuantizer::from_float(&t, bits, QuantMode::Csq);
        q.finalize();
        let want = q.materialize();
        let mut layer = Linear::new(Box::new(q), in_f, out_f, false);
        let packed = PackedModel::pack(&mut layer).unwrap();
        let got = packed.layers[0].unpack();
        prop_assert_eq!(got.dims(), want.dims());
        prop_assert!(got.approx_eq(&want, 1e-6));
        let repacked = PackedModel::pack(&mut layer).unwrap();
        prop_assert_eq!(&repacked, &packed);
    }
}
