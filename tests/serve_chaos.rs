//! Deterministic serve-side chaos suite.
//!
//! Every test drives an [`Engine`] under a seeded [`ChaosPlan`] —
//! worker kills, batch poisoning, injected latency, artifact
//! corruption, overload bursts — and asserts the resilience contract:
//!
//! * every request the engine *accepts and answers* returns bits
//!   identical to the quiet-path (no chaos) engine;
//! * every request it cannot answer gets a **typed** [`ServeError`]
//!   (`WorkerFailed`, `DeadlineExceeded`, `QueueFull`, `RateLimited`,
//!   ...), never a hang and never a wrong answer;
//! * the engine itself survives: workers are restarted, poisoned
//!   batches fail alone, corrupted replacement models never reach the
//!   serving path.
//!
//! The chaos schedules are deterministic data (consumed-once entries
//! keyed by worker/batch ordinals), so these tests do not depend on
//! timing luck for *what* gets injected — only the batch composition
//! varies run to run, and the assertions are written to hold for any
//! composition.

use csq_repro::csq::fault::{flip_bit, ChaosPlan};
use csq_repro::csq::{PackedWeight, QuantScheme};
use csq_repro::nn::InferOp;
use csq_repro::serve::{
    CalibrationEntry, CompiledModel, Engine, EngineConfig, ModelArtifact, ServeError,
    SubmitOptions, TenantQuota, CSQM_FORMAT_VERSION,
};
use csq_repro::tensor::par::ScratchPool;
use csq_repro::tensor::Tensor;
use std::path::PathBuf;
use std::time::Duration;

/// A hand-built single-linear-layer artifact (`in_features →
/// out_features`), no training required. `offset` shifts every weight
/// code so different offsets give bit-distinguishable model "versions".
fn linear_artifact(
    name: &str,
    in_features: usize,
    out_features: usize,
    offset: i32,
) -> ModelArtifact {
    let codes: Vec<i32> = (0..in_features * out_features)
        .map(|i| (i as i32 % 9) - 4 + offset)
        .collect();
    ModelArtifact {
        format_version: CSQM_FORMAT_VERSION,
        name: name.to_string(),
        input_dims: vec![in_features],
        num_classes: out_features,
        ops: vec![InferOp::Linear {
            weight: "w".to_string(),
            in_features,
            out_features,
            bias: Some((0..out_features).map(|o| o as f32 * 0.1 - 0.2).collect()),
        }],
        weights: vec![PackedWeight {
            path: "w".to_string(),
            codes,
            step: 0.05,
            dims: vec![out_features, in_features],
            bits: 8.0,
        }],
        scheme: QuantScheme {
            layers: vec![],
            avg_bits: 8.0,
            compression: 4.0,
        },
        calibration: vec![CalibrationEntry {
            weight_path: "w".to_string(),
            step: 0.01,
            observed_lo: 0.0,
            observed_hi: 2.55,
            integer: true,
        }],
    }
}

fn tiny(offset: i32) -> CompiledModel {
    linear_artifact("tiny", 3, 2, offset).compile().unwrap()
}

fn sample(i: usize) -> Tensor {
    let base = (i % 8) as f32 * 0.25;
    Tensor::from_vec(vec![base, base + 0.3, base + 0.6], &[3])
}

/// Quiet-path reference: the logits row this model returns for `x`
/// served alone. Bit-determinism of the executor makes this THE answer
/// any chaos-surviving request must reproduce exactly.
fn reference_row(model: &CompiledModel, x: &Tensor) -> Vec<f32> {
    let scratch: ScratchPool<u8> = ScratchPool::new();
    let mut dims = vec![1];
    dims.extend_from_slice(x.dims());
    model
        .forward_batch(&x.reshape(&dims), &scratch)
        .expect("reference forward")
        .data()
        .to_vec()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("csq_chaos_{name}_{}.csqm", std::process::id()))
}

/// The headline invariant: under a chaos schedule that kills the worker
/// twice and poisons a batch, every answered request is bit-identical
/// to the quiet path, every failed request carries a typed
/// `WorkerFailed`, the supervisor restarts the dead workers, and
/// retrying the failures on the recovered engine succeeds exactly.
#[test]
fn chaos_survivors_are_bit_identical_and_failures_are_typed() {
    let model = tiny(0);
    let refs: Vec<Vec<f32>> = (0..16).map(|i| reference_row(&model, &sample(i))).collect();

    // One worker, one-sample batches: request i is batch i of whichever
    // worker incarnation serves it. Kill the worker at its 2nd batch,
    // twice (ordinals restart at 0 after a restart, so the replacement
    // is killed at *its* 2nd batch too), and poison global batch 5.
    let chaos = ChaosPlan::new()
        .kill_worker_at(0, 1)
        .kill_worker_at(0, 1)
        .poison_batch_at(5)
        .delay_batch_at(2, Duration::from_millis(2));
    let engine = Engine::start_with_chaos(
        tiny(0),
        EngineConfig {
            workers: 1,
            max_batch: 1,
            batch_window: Duration::from_millis(0),
            queue_capacity: 64,
            ..EngineConfig::default()
        },
        chaos,
    );

    let tickets: Vec<_> = (0..16).map(|i| engine.submit(sample(i)).unwrap()).collect();
    let mut failed = Vec::new();
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait() {
            Ok(row) => assert_eq!(row.data(), &refs[i][..], "request {i} answer changed bits"),
            Err(ServeError::WorkerFailed { .. }) => failed.push(i),
            Err(other) => panic!("request {i}: expected WorkerFailed, got {other}"),
        }
    }
    // Two kills take down one request each (their reply senders drop);
    // the poisoned batch fails its one request with a contained panic.
    assert_eq!(failed.len(), 3, "exactly the injected faults fail: {failed:?}");

    // The engine recovered: retry every failure and demand exact bits.
    for &i in &failed {
        let row = engine.infer(sample(i)).unwrap();
        assert_eq!(row.data(), &refs[i][..], "retry {i} answer changed bits");
    }

    let stats = engine.stats();
    assert_eq!(stats.worker_restarts, 2, "both kills must be supervised");
    assert_eq!(stats.panics_contained, 1, "poison is contained, not fatal");
    assert_eq!(stats.completed, 16, "13 first-pass + 3 retries");
    assert_eq!(stats.failed, 1, "only the poisoned batch records failed");
}

/// A poisoned batch fails only its own tickets: the worker survives
/// (zero restarts), later requests are answered exactly, and the panic
/// is visible in the stats.
#[test]
fn poisoned_batch_fails_alone_and_worker_survives() {
    let model = tiny(0);
    let engine = Engine::start_with_chaos(
        tiny(0),
        EngineConfig {
            workers: 1,
            max_batch: 1,
            batch_window: Duration::from_millis(0),
            ..EngineConfig::default()
        },
        ChaosPlan::new().poison_batch_at(0),
    );
    let err = engine.infer(sample(0)).unwrap_err();
    match err {
        ServeError::WorkerFailed { detail } => {
            assert!(detail.contains("poisoned"), "detail names the cause: {detail}")
        }
        other => panic!("expected WorkerFailed, got {other}"),
    }
    let row = engine.infer(sample(1)).unwrap();
    assert_eq!(row.data(), &reference_row(&model, &sample(1))[..]);
    let stats = engine.stats();
    assert_eq!(stats.panics_contained, 1);
    assert_eq!(stats.worker_restarts, 0, "containment means no restart");
    assert_eq!(stats.failed, 1);
}

/// Chaos-injected latency pushes a deadlined request past its budget:
/// the caller gets a typed `DeadlineExceeded` no later than the
/// deadline (never a hang), while an undeadlined request behind it is
/// simply served late — with exact bits.
#[test]
fn injected_latency_expires_deadlined_requests_with_typed_errors() {
    let model = tiny(0);
    let engine = Engine::start_with_chaos(
        tiny(0),
        EngineConfig {
            workers: 1,
            max_batch: 1,
            batch_window: Duration::from_millis(0),
            ..EngineConfig::default()
        },
        ChaosPlan::new().delay_batch_at(0, Duration::from_millis(50)),
    );
    let hurried = engine
        .submit_with(
            sample(0),
            SubmitOptions::default().with_deadline(Duration::from_millis(5)),
        )
        .unwrap();
    let patient = engine.submit(sample(1)).unwrap();
    assert_eq!(hurried.wait().unwrap_err(), ServeError::DeadlineExceeded);
    let row = patient.wait().unwrap();
    assert_eq!(row.data(), &reference_row(&model, &sample(1))[..]);
    assert!(engine.stats().expired >= 1);
}

/// Hot-swap under live traffic: concurrent clients hammer the engine
/// while the model is swapped. Zero requests are dropped, every answer
/// is bit-identical to one of the two versions' quiet paths, and
/// post-swap requests run the new version.
#[test]
fn hot_swap_under_live_traffic_drops_nothing() {
    let model_a = tiny(0);
    let model_b = tiny(9);
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 40;
    let refs_a: Vec<Vec<f32>> = (0..8).map(|i| reference_row(&model_a, &sample(i))).collect();
    let refs_b: Vec<Vec<f32>> = (0..8).map(|i| reference_row(&model_b, &sample(i))).collect();

    let engine = Engine::start(
        tiny(0),
        EngineConfig {
            workers: 2,
            max_batch: 4,
            batch_window: Duration::from_millis(1),
            queue_capacity: 512,
            ..EngineConfig::default()
        },
    );

    // An incompatible replacement (wrong input width) is refused up
    // front and must not disturb anything.
    let err = engine
        .swap_model(linear_artifact("fat", 5, 2, 0).compile().unwrap())
        .unwrap_err();
    assert!(matches!(err, ServeError::SwapIncompatible { .. }));
    assert_eq!(engine.model_version(), 1);

    let results = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let engine = &engine;
                scope.spawn(move || {
                    let mut rows = Vec::with_capacity(PER_CLIENT);
                    for r in 0..PER_CLIENT {
                        let i = (c + r) % 8;
                        rows.push((i, engine.infer(sample(i))));
                    }
                    rows
                })
            })
            .collect();
        // Let the clients get going, then flip the model mid-stream.
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(engine.swap_model(tiny(9)).unwrap(), 2);
        workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect::<Vec<_>>()
    });

    assert_eq!(results.len(), CLIENTS * PER_CLIENT);
    for (i, result) in results {
        let row = result.unwrap_or_else(|e| panic!("request for sample {i} failed: {e}"));
        let bits = row.data();
        assert!(
            bits == &refs_a[i][..] || bits == &refs_b[i][..],
            "sample {i}: answer matches neither version's quiet path"
        );
    }
    // After the swap settles, everything runs the new version exactly.
    let i = 3;
    assert_eq!(engine.infer(sample(i)).unwrap().data(), &refs_b[i][..]);
    let stats = engine.stats();
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.model_version, 2);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.completed as usize, CLIENTS * PER_CLIENT + 1);
}

/// A replacement artifact corrupted in transit (chaos flips a payload
/// bit before the swap) fails the checksummed load and never reaches
/// the engine — the old version keeps serving, bit-exact.
#[test]
fn corrupted_replacement_artifact_never_reaches_the_engine() {
    let model_a = tiny(0);
    let engine = Engine::start(
        tiny(0),
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
    );

    let path = temp_path("swap");
    linear_artifact("tiny", 3, 2, 9).save(&path).unwrap();
    let mut chaos = ChaosPlan::new().corrupt_artifact_at(64, 2);
    while let Some((byte, bit)) = chaos.take_artifact_flip() {
        flip_bit(&path, byte, bit).unwrap();
    }

    // The deploy pipeline: load (checksum verify) → compile → swap.
    // Corruption must be caught at the first step.
    let load = ModelArtifact::load(&path);
    std::fs::remove_file(&path).ok();
    assert!(load.is_err(), "bit-flipped artifact must fail its checksum");

    assert_eq!(engine.model_version(), 1, "no swap happened");
    let row = engine.infer(sample(2)).unwrap();
    assert_eq!(row.data(), &reference_row(&model_a, &sample(2))[..]);
    assert_eq!(engine.stats().swaps, 0);
}

/// Overload bursts against a deliberately slow model and a tiny queue:
/// excess load is shed with typed `QueueFull`, the shed is counted (per
/// tenant too), and every request that *was* accepted still returns
/// exact bits — overload degrades capacity, never correctness.
#[test]
fn overload_bursts_shed_typed_and_accepted_work_stays_exact() {
    let n = 1024;
    let artifact = linear_artifact("wide", n, n, 0);
    let model = artifact.compile().unwrap();
    let x = Tensor::from_vec(vec![0.5; n], &[n]);
    let want = reference_row(&model, &x);

    let engine = Engine::start(
        artifact.compile().unwrap(),
        EngineConfig {
            workers: 1,
            max_batch: 1,
            batch_window: Duration::from_millis(0),
            queue_capacity: 2,
            ..EngineConfig::default()
        },
    );

    // The burst schedule lives in the chaos plan; the harness (this
    // loop) consumes it, playing the role of a misbehaving client.
    let mut chaos = ChaosPlan::new().burst_at(0, 16).burst_at(2, 16);
    let mut tickets = Vec::new();
    let mut shed = 0u64;
    for tick in 0..4u64 {
        let mut wave = 1; // steady background of one request per tick
        if let Some(extra) = chaos.take_burst(tick) {
            wave += extra;
        }
        for _ in 0..wave {
            let opts = SubmitOptions::default().with_tenant("burst");
            match engine.submit_with(x.clone(), opts) {
                Ok(t) => tickets.push(t),
                Err(ServeError::QueueFull { capacity }) => {
                    assert_eq!(capacity, 2);
                    shed += 1;
                }
                Err(e) => panic!("overload must shed with QueueFull, got {e}"),
            }
        }
    }
    assert!(chaos.is_spent(), "both bursts fired");
    assert!(shed >= 1, "a 16-deep burst into a 2-slot queue must shed");

    let accepted = tickets.len() as u64;
    for ticket in tickets {
        let row = ticket.wait().unwrap();
        assert_eq!(row.data(), &want[..], "accepted request changed bits under overload");
    }
    let stats = engine.stats();
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.completed, accepted);
    let tenant = &stats.tenants["burst"];
    assert_eq!(tenant.submitted, accepted);
    assert_eq!(tenant.shed, shed);
    assert_eq!(tenant.completed, accepted);
}

/// Admission control under chaos conditions: an over-quota tenant is
/// rejected with a typed error and accounted, while admitted requests
/// (and anonymous traffic) are served exactly.
#[test]
fn rate_limited_tenants_get_typed_errors_and_accounting() {
    let model = tiny(0);
    let engine = Engine::start(
        tiny(0),
        EngineConfig {
            workers: 1,
            tenant_quota: Some(TenantQuota {
                rate_per_sec: 0.0,
                burst: 3.0,
            }),
            ..EngineConfig::default()
        },
    );
    let opts = || SubmitOptions::default().with_tenant("noisy");
    let mut admitted = Vec::new();
    let mut rejected = 0u64;
    for i in 0..5 {
        match engine.submit_with(sample(i), opts()) {
            Ok(t) => admitted.push((i, t)),
            Err(ServeError::RateLimited { tenant }) => {
                assert_eq!(tenant, "noisy");
                rejected += 1;
            }
            Err(e) => panic!("over-quota must be RateLimited, got {e}"),
        }
    }
    assert_eq!(admitted.len(), 3, "fixed budget of 3 admits exactly 3");
    assert_eq!(rejected, 2);
    for (i, ticket) in admitted {
        let row = ticket.wait().unwrap();
        assert_eq!(row.data(), &reference_row(&model, &sample(i))[..]);
    }
    // Anonymous traffic bypasses the bucket.
    assert!(engine.infer(sample(7)).is_ok());
    let stats = engine.stats();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.tenants["noisy"].rejected, 2);
    assert_eq!(stats.tenants["noisy"].completed, 3);
}

/// With tracing on, a chaos kill leaves a flight-recorder postmortem on
/// disk that names the killed worker, carries the failed batch's trace
/// ids (the same ids the caller sees on its [`Ticket`]s), and records
/// the supervisor restart — every line well-formed JSON.
#[test]
fn flight_recorder_postmortem_names_worker_trace_ids_and_restart() {
    // `scripts/check.sh` runs this drill with CSQ_POSTMORTEM_DIR set so
    // it can inspect the dump itself; standalone runs use a temp dir.
    let dir = std::env::var_os("CSQ_POSTMORTEM_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("csq_postmortem_{}", std::process::id()))
        });
    std::fs::create_dir_all(&dir).unwrap();
    csq_repro::obs::flight::set_postmortem_dir(Some(dir.clone()));
    csq_repro::obs::trace::set_enabled(true);

    let engine = Engine::start_with_chaos(
        tiny(0),
        EngineConfig {
            workers: 1,
            max_batch: 1,
            batch_window: Duration::from_millis(0),
            queue_capacity: 64,
            ..EngineConfig::default()
        },
        ChaosPlan::new().kill_worker_at(0, 1),
    );
    let tickets: Vec<_> = (0..4).map(|i| engine.submit(sample(i)).unwrap()).collect();
    let mut failed_ids = Vec::new();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let id = ticket.trace_id();
        assert_ne!(id, 0, "every request gets a non-zero trace id");
        match ticket.wait() {
            Ok(_) => {}
            Err(ServeError::WorkerFailed { .. }) => failed_ids.push(id),
            Err(other) => panic!("request {i}: unexpected error {other}"),
        }
    }
    assert_eq!(failed_ids.len(), 1, "exactly the killed batch fails");
    // The engine answering again proves the supervisor restarted the
    // (only) worker — and the restart path dumps before respawning.
    engine.infer(sample(0)).unwrap();
    assert_eq!(engine.stats().worker_restarts, 1);
    csq_repro::obs::trace::set_enabled(false);
    csq_repro::obs::flight::set_postmortem_dir(None);

    // Find the postmortem that covers our failure. Other tests in this
    // binary share the process-global ring, so we search by our own
    // trace id rather than assuming a single file.
    let killed_id = failed_ids[0].to_string();
    let mut saw_kill = false;
    let mut saw_restart = false;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("postmortem-") || !name.ends_with(".jsonl") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let header: serde_json::Value =
            serde_json::from_str(lines.next().expect("postmortem has a header")).unwrap();
        assert!(
            header.get("postmortem").is_some(),
            "header line names the dump reason: {header}"
        );
        for line in lines {
            let ev: serde_json::Value =
                serde_json::from_str(line).unwrap_or_else(|e| panic!("bad JSONL line ({e}): {line}"));
            let ev_name = ev["name"].as_str().unwrap_or("");
            let field = |key: &str| -> Option<String> {
                ev["fields"].as_array().and_then(|fields| {
                    fields.iter().find_map(|kv| {
                        (kv[0].as_str() == Some(key)).then(|| kv[1].as_str().unwrap_or("").to_string())
                    })
                })
            };
            if ev_name == "chaos_kill" {
                let ids = field("trace_ids").unwrap_or_default();
                if ids.split(',').any(|id| id == killed_id) {
                    assert_eq!(field("worker").as_deref(), Some("0"), "kill names the worker");
                    saw_kill = true;
                }
            }
            if ev_name == "worker_restart" {
                saw_restart = true;
            }
        }
    }
    assert!(saw_kill, "a postmortem records the chaos kill with the failed trace id");
    assert!(saw_restart, "a postmortem records the supervisor restart");
}

/// The seeded chaos generator is deterministic: two plans from the same
/// seed are equal, and a full drain of one leaves it spent. This is
/// what makes a chaos drill reproducible from a single logged seed.
#[test]
fn seeded_chaos_drills_replay_exactly() {
    let a = ChaosPlan::seeded(0xC5A0_5EED, 4, 64, 3, 3, Duration::from_millis(4));
    let b = ChaosPlan::seeded(0xC5A0_5EED, 4, 64, 3, 3, Duration::from_millis(4));
    assert_eq!(a, b, "same seed, same schedule");
    let c = ChaosPlan::seeded(0xC5A0_5EEE, 4, 64, 3, 3, Duration::from_millis(4));
    assert_ne!(a, c, "different seed, different schedule");

    // Run a seeded drill end to end: whatever the schedule injected,
    // the engine must answer-or-type every request and keep serving.
    let model = tiny(0);
    let engine = Engine::start_with_chaos(
        tiny(0),
        EngineConfig {
            workers: 2,
            max_batch: 2,
            batch_window: Duration::from_millis(1),
            queue_capacity: 128,
            ..EngineConfig::default()
        },
        a,
    );
    let tickets: Vec<_> = (0..48).map(|i| engine.submit(sample(i)).unwrap()).collect();
    let mut retry = Vec::new();
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait() {
            Ok(row) => assert_eq!(row.data(), &reference_row(&model, &sample(i))[..]),
            Err(ServeError::WorkerFailed { .. }) => retry.push(i),
            Err(other) => panic!("request {i}: unexpected error {other}"),
        }
    }
    for i in retry {
        let row = engine.infer(sample(i)).unwrap();
        assert_eq!(row.data(), &reference_row(&model, &sample(i))[..], "retry {i}");
    }
}
