//! Property and concurrency tests for the `csq-obs` metrics registry.
//!
//! * Merged-histogram percentiles stay within the geometric-bucket
//!   error bound of the exact order statistics: for any recorded
//!   values, `v ≤ estimate ≤ max(2·v, 1)` where `v` is the exact
//!   percentile of the pooled data — and merging two snapshots gives
//!   exactly the histogram of recording everything into one.
//! * Counter and gauge snapshots are race-free under concurrent
//!   writers: no update is lost and no snapshot observes a torn or
//!   retreating value.

use csq_repro::obs::{GeoHistogram, MetricsRegistry};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Exact q-th percentile of `values` by sorting, matching the
/// histogram's rank convention (`ceil(total · q)`, 1-based).
fn exact_percentile(values: &mut [u64], q: f64) -> u64 {
    values.sort_unstable();
    let rank = ((values.len() as f64 * q).ceil() as usize).clamp(1, values.len());
    values[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Values are capped below the top finite bucket bound (2^23 for
    /// the default 24 buckets) so the overflow clamp never kicks in and
    /// the geometric bound is exact.
    #[test]
    fn merged_percentiles_stay_within_geometric_bound(
        a in proptest::collection::vec(0u64..8_000_000, 1..200),
        b in proptest::collection::vec(0u64..8_000_000, 0..200),
    ) {
        let ha = GeoHistogram::new(24);
        let hb = GeoHistogram::new(24);
        let hall = GeoHistogram::new(24);
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        prop_assert_eq!(&merged, &hall.snapshot(),
            "merging snapshots must equal recording everything into one");

        let mut pooled: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        for q in [0.5, 0.95, 0.99] {
            let exact = exact_percentile(&mut pooled, q);
            let est = merged.percentile(q);
            prop_assert!(est >= exact,
                "p{q}: estimate {est} below exact {exact}");
            prop_assert!(est <= (2 * exact).max(1),
                "p{q}: estimate {est} beyond geometric bound of exact {exact}");
        }
    }
}

/// Concurrent counter/gauge writers against a snapshotting reader: the
/// final tallies are exact (no lost updates) and every mid-flight
/// snapshot sees the counter monotonically non-decreasing and within
/// range (no torn reads).
#[test]
fn counter_and_gauge_snapshots_are_race_free_under_concurrent_writers() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;
    let reg = MetricsRegistry::new();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let reg = &reg;
            scope.spawn(move || {
                let c = reg.counter("hits");
                let g = reg.gauge("level");
                for i in 0..PER_WRITER {
                    c.inc();
                    // Writer w nets +w over its run.
                    if i % 2 == 0 {
                        g.add(w as i64 + 1);
                    } else {
                        g.add(-(w as i64 + 1));
                    }
                }
                g.add(w as i64 + 1); // one unpaired add: net +(w+1)
            });
        }
        let reader = scope.spawn(|| {
            let mut last = 0u64;
            let mut snapshots = 0u64;
            while !done.load(Ordering::Relaxed) {
                let snap = reg.snapshot();
                let hits = snap.counters.get("hits").copied().unwrap_or(0);
                assert!(hits >= last, "counter went backwards: {last} -> {hits}");
                assert!(
                    hits <= WRITERS as u64 * PER_WRITER,
                    "counter overshot: {hits}"
                );
                last = hits;
                snapshots += 1;
            }
            snapshots
        });
        // Writers finish, then release the reader.
        // (Scope joins writer threads automatically; signal via a side
        // channel once the counter is fully written.)
        let c = reg.counter("hits");
        while c.get() < WRITERS as u64 * PER_WRITER {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Relaxed);
        let snapshots = reader.join().unwrap();
        assert!(snapshots > 0, "reader must have snapshotted at least once");
    });

    let snap = reg.snapshot();
    assert_eq!(
        snap.counters["hits"],
        WRITERS as u64 * PER_WRITER,
        "every increment must land"
    );
    // Paired adds cancel; the unpaired tail sums 1+2+..+WRITERS.
    let expected: i64 = (1..=WRITERS as i64).sum();
    assert_eq!(snap.gauges["level"], expected, "gauge adds must not race");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fleet-rollup invariant: merging K per-replica histograms
    /// (as `csq-fleet` does when rolling replica stats into one model
    /// view) and then taking a percentile is within one geometric
    /// bucket — a factor of 2 — of the exact percentile of pooling
    /// every replica's raw samples. Replica counts, sizes, and value
    /// ranges are all arbitrary; the bound must hold regardless of how
    /// traffic was sharded across replicas.
    #[test]
    fn k_replica_merge_percentiles_stay_within_one_bucket(
        replicas in proptest::collection::vec(
            proptest::collection::vec(0u64..8_000_000, 1..120),
            1..9,
        ),
    ) {
        let mut merged = GeoHistogram::new(24).snapshot();
        let mut pooled: Vec<u64> = Vec::new();
        for samples in &replicas {
            let h = GeoHistogram::new(24);
            for &v in samples {
                h.record(v);
                pooled.push(v);
            }
            merged.merge(&h.snapshot());
        }
        prop_assert_eq!(merged.total(), pooled.len() as u64);
        for q in [0.5, 0.95, 0.99] {
            let exact = exact_percentile(&mut pooled, q);
            let est = merged.percentile(q);
            prop_assert!(est >= exact,
                "p{q} over {} replicas: estimate {est} below exact {exact}",
                replicas.len());
            prop_assert!(est <= (2 * exact).max(1),
                "p{q} over {} replicas: estimate {est} beyond one geometric bucket of {exact}",
                replicas.len());
        }
    }
}
