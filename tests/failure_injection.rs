//! Failure-injection tests: corrupted parameters, degenerate configs and
//! malformed inputs must fail loudly with actionable messages, never
//! silently produce garbage.

use csq_repro::csq::prelude::*;
use csq_repro::data::{Dataset, Split, SyntheticSpec};
use csq_repro::nn::models::{resnet_cifar, ModelConfig};
use csq_repro::nn::weight::float_factory;
use csq_repro::nn::Layer;
use csq_repro::tensor::Tensor;

fn tiny_data() -> Dataset {
    Dataset::synthetic(
        &SyntheticSpec::cifar_like(0)
            .with_samples(4, 2)
            .with_classes(4),
    )
}

fn tiny_model() -> csq_repro::nn::Sequential {
    let mut factory = float_factory();
    let mut cfg = ModelConfig::cifar_like(4, None, 0);
    cfg.num_classes = 4;
    resnet_cifar(cfg, &mut factory, 1)
}

#[test]
#[should_panic(expected = "non-finite loss")]
fn nan_parameters_abort_training_with_context() {
    let data = tiny_data();
    let mut model = tiny_model();
    // Corrupt the classifier weight (the last parameters visited). A NaN
    // in an earlier layer would be silently absorbed by ReLU's
    // `max(NaN, 0) == 0` semantics; the classifier feeds the loss
    // directly.
    let mut n_params = 0;
    model.visit_params(&mut |_| n_params += 1);
    let mut idx = 0;
    model.visit_params(&mut |p| {
        idx += 1;
        if idx == n_params - 1 {
            p.value.fill(f32::NAN);
        }
    });
    let mut cfg = FitConfig::fast(1);
    cfg.batch_size = 8;
    fit(&mut model, &data, &cfg, false);
}

#[test]
#[should_panic(expected = "fit requires at least one epoch")]
fn zero_epochs_rejected() {
    let data = tiny_data();
    let mut model = tiny_model();
    let mut cfg = FitConfig::fast(1);
    cfg.epochs = 0;
    fit(&mut model, &data, &cfg, false);
}

#[test]
#[should_panic(expected = "lambda must be non-negative")]
fn negative_lambda_rejected() {
    BudgetRegularizer::new(-0.1, 3.0);
}

#[test]
#[should_panic(expected = "target precision must be positive")]
fn zero_target_rejected() {
    BudgetRegularizer::new(0.1, 0.0);
}

#[test]
#[should_panic(expected = "conv input channel mismatch")]
fn wrong_channel_count_rejected() {
    let mut model = tiny_model();
    model.forward(&Tensor::zeros(&[1, 5, 16, 16]), false);
}

#[test]
fn scheme_parser_rejects_malformed_json() {
    assert!(QuantScheme::from_json("{not json").is_err());
    assert!(QuantScheme::from_json("{\"layers\": 3}").is_err());
}

#[test]
fn evaluate_on_mismatched_split_panics_cleanly() {
    // A split whose image geometry doesn't match the model must panic
    // with the conv shape message, not produce silent nonsense.
    let mut model = tiny_model();
    let bad = Split {
        images: Tensor::zeros(&[2, 3, 7, 7]),
        labels: vec![0, 1],
    };
    // 7x7 input still works through GlobalAvgPool (size-agnostic model),
    // so this should NOT panic — documenting the flexible behaviour.
    let (_, acc) = csq_repro::csq::trainer::evaluate(&mut model, &bad, 2);
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn pack_reports_layer_of_failure() {
    use csq_repro::csq::PackedModel;
    let mut model = tiny_model(); // float weights: no grid
    let err = PackedModel::pack(&mut model).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("layer 0"), "error names the layer: {msg}");
}
