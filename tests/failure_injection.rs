//! Failure-injection tests: corrupted parameters, degenerate configs,
//! malformed inputs, simulated crashes and damaged snapshot files must
//! fail loudly with actionable errors — or recover deterministically —
//! never silently produce garbage.

use csq_repro::csq::fault::{flip_bit, truncate_file};
use csq_repro::csq::prelude::*;
use csq_repro::csq::resume::SnapshotError;
use csq_repro::data::{Dataset, Split, SyntheticSpec};
use csq_repro::nn::models::{resnet_cifar, ModelConfig};
use csq_repro::nn::weight::float_factory;
use csq_repro::nn::Layer;
use csq_repro::tensor::Tensor;
use std::path::PathBuf;

fn tiny_data() -> Dataset {
    Dataset::synthetic(
        &SyntheticSpec::cifar_like(0)
            .with_samples(16, 8)
            .with_classes(4)
            .with_noise(0.5),
    )
}

fn tiny_model() -> csq_repro::nn::Sequential {
    let mut factory = float_factory();
    let mut cfg = ModelConfig::cifar_like(4, None, 0);
    cfg.num_classes = 4;
    resnet_cifar(cfg, &mut factory, 1)
}

/// A fresh, deterministically initialized CSQ model — two calls produce
/// bit-identical models, which the resume-equivalence test relies on.
fn tiny_csq_model() -> csq_repro::nn::Sequential {
    let mut factory = csq_factory(8);
    let mut cfg = ModelConfig::cifar_like(4, Some(3), 0);
    cfg.num_classes = 4;
    resnet_cifar(cfg, &mut factory, 1)
}

fn tiny_csq_cfg(epochs: usize) -> CsqConfig {
    let mut cfg = CsqConfig::fast(3.0).with_epochs(epochs);
    cfg.batch_size = 8;
    cfg
}

fn temp_snapshot(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("csq_fi_{name}_{}.snap", std::process::id()))
}

#[test]
fn nan_parameters_yield_structured_divergence_error() {
    let data = tiny_data();
    let mut model = tiny_model();
    // Corrupt the classifier weight (the last parameters visited). A NaN
    // in an earlier layer would be silently absorbed by ReLU's
    // `max(NaN, 0) == 0` semantics; the classifier feeds the loss
    // directly.
    let mut n_params = 0;
    model.visit_params(&mut |_| n_params += 1);
    let mut idx = 0;
    model.visit_params(&mut |p| {
        idx += 1;
        if idx == n_params - 1 {
            p.value.fill(f32::NAN);
        }
    });
    let mut cfg = FitConfig::fast(1);
    cfg.batch_size = 8;
    // Every batch produces a non-finite loss; rewinding restores the same
    // broken parameters, so the retry budget runs out and `fit` reports
    // divergence instead of panicking.
    let err = fit(&mut model, &data, &cfg, false).unwrap_err();
    assert!(
        matches!(err, TrainError::Diverged { epoch: 0, .. }),
        "expected divergence at epoch 0, got: {err}"
    );
}

#[test]
fn strict_recovery_fails_on_first_bad_batch() {
    let data = tiny_data();
    let mut model = tiny_csq_model();
    let err = CsqTrainer::new(tiny_csq_cfg(4))
        .with_recovery(RecoveryPolicy::strict())
        .with_faults(FaultPlan::default().nan_loss_at(0))
        .train(&mut model, &data)
        .unwrap_err();
    assert!(
        matches!(
            err,
            TrainError::Diverged {
                epoch: 0,
                rewinds: 0
            }
        ),
        "strict policy must fail fast, got: {err}"
    );
}

#[test]
fn zero_epochs_rejected() {
    let data = tiny_data();
    let mut model = tiny_model();
    let mut cfg = FitConfig::fast(1);
    cfg.epochs = 0;
    assert!(matches!(
        fit(&mut model, &data, &cfg, false),
        Err(TrainError::ZeroEpochs)
    ));
}

#[test]
fn transient_nan_loss_is_skipped_and_training_completes() {
    let data = tiny_data();
    let mut model = tiny_csq_model();
    let report = CsqTrainer::new(tiny_csq_cfg(4))
        .with_faults(FaultPlan::default().nan_loss_at(1))
        .train(&mut model, &data)
        .unwrap();
    assert_eq!(report.history.len(), 4);
    assert_eq!(
        report.history[0].skipped, 1,
        "the poisoned batch is skipped, not averaged in"
    );
    assert!(report.final_avg_bits.is_finite());
}

#[test]
fn nan_grad_storm_rewinds_and_recovers() {
    let data = tiny_data();
    let mut model = tiny_csq_model();
    // NaN gradients at step 0 poison the parameters; every later batch
    // then skips, which the recovery policy classifies as a storm. The
    // rewind restores the initial state and — the injection now spent —
    // the retry trains through cleanly with a backed-off learning rate.
    let report = CsqTrainer::new(tiny_csq_cfg(6))
        .with_faults(FaultPlan::default().nan_grads_at(0))
        .train(&mut model, &data)
        .unwrap();
    assert_eq!(report.history.len(), 6);
    assert!(
        report.history.iter().all(|h| h.skipped == 0),
        "post-rewind history contains only clean epochs"
    );
    assert!(report.final_avg_bits.is_finite());
}

#[test]
fn resume_after_crash_matches_uninterrupted_run() {
    let data = tiny_data();
    let path = temp_snapshot("equivalence");
    let epochs = 10;

    // Reference: one uninterrupted run.
    let mut straight_model = tiny_csq_model();
    let straight = CsqTrainer::new(tiny_csq_cfg(epochs))
        .train(&mut straight_model, &data)
        .unwrap();

    // Crashed run: snapshot every epoch, simulated crash after epoch 4.
    let mut crashed_model = tiny_csq_model();
    let err = CsqTrainer::new(tiny_csq_cfg(epochs))
        .with_snapshots(SnapshotPolicy::every_epochs(1, &path))
        .with_faults(FaultPlan::default().crash_at_epoch(4))
        .train(&mut crashed_model, &data)
        .unwrap_err();
    assert!(matches!(err, TrainError::InjectedCrash { epoch: 4 }));

    // Restart from the snapshot on a freshly built model (the crashed
    // process is gone; only the file survives).
    let mut resumed_model = tiny_csq_model();
    let resumed = CsqTrainer::new(tiny_csq_cfg(epochs))
        .resume_from(&path)
        .train(&mut resumed_model, &data)
        .unwrap();

    assert_eq!(straight.history.len(), resumed.history.len());
    for (s, r) in straight.history.iter().zip(resumed.history.iter()) {
        assert_eq!(s.epoch, r.epoch);
        assert_eq!(s.loss, r.loss, "epoch {} loss must be bit-exact", s.epoch);
        assert_eq!(s.avg_bits, r.avg_bits, "epoch {} precision", s.epoch);
        assert_eq!(s.beta, r.beta, "epoch {} temperature", s.epoch);
        assert_eq!(s.test_acc, r.test_acc, "epoch {} test accuracy", s.epoch);
    }
    assert_eq!(straight.final_avg_bits, resumed.final_avg_bits);
    assert_eq!(straight.final_test_accuracy, resumed.final_test_accuracy);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resume_from_missing_snapshot_starts_fresh() {
    // A first run and a restart share one command line: when the
    // snapshot file does not exist yet, `resume_from` trains from
    // scratch instead of erroring.
    let data = tiny_data();
    let mut model = tiny_csq_model();
    let path = temp_snapshot("missing");
    std::fs::remove_file(&path).ok();
    let report = CsqTrainer::new(tiny_csq_cfg(3))
        .resume_from(&path)
        .train(&mut model, &data)
        .unwrap();
    assert_eq!(report.history.len(), 3);
}

#[test]
fn bit_flipped_snapshot_is_rejected_on_resume() {
    let data = tiny_data();
    let mut model = tiny_csq_model();
    let path = temp_snapshot("bitflip");
    CsqTrainer::new(tiny_csq_cfg(2))
        .with_snapshots(SnapshotPolicy::every_epochs(1, &path))
        .train(&mut model, &data)
        .unwrap();

    // Flip one bit somewhere in the payload: the checksum must catch it.
    let len = std::fs::metadata(&path).unwrap().len();
    flip_bit(&path, len / 2, 3).unwrap();

    let mut fresh = tiny_csq_model();
    let err = CsqTrainer::new(tiny_csq_cfg(2))
        .resume_from(&path)
        .train(&mut fresh, &data)
        .unwrap_err();
    assert!(
        matches!(err, TrainError::Snapshot(_)),
        "corruption must surface as a snapshot error, got: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_snapshot_is_rejected_on_resume() {
    let data = tiny_data();
    let mut model = tiny_csq_model();
    let path = temp_snapshot("truncate");
    CsqTrainer::new(tiny_csq_cfg(2))
        .with_snapshots(SnapshotPolicy::every_epochs(1, &path))
        .train(&mut model, &data)
        .unwrap();

    // Simulate a partial write (e.g. disk-full during a non-atomic copy).
    truncate_file(&path, 37).unwrap();

    let mut fresh = tiny_csq_model();
    let err = CsqTrainer::new(tiny_csq_cfg(2))
        .resume_from(&path)
        .train(&mut fresh, &data)
        .unwrap_err();
    assert!(
        matches!(err, TrainError::Snapshot(_)),
        "truncation must surface as a snapshot error, got: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_from_mismatched_config_is_rejected() {
    let data = tiny_data();
    let mut model = tiny_csq_model();
    let path = temp_snapshot("mismatch");
    CsqTrainer::new(tiny_csq_cfg(4))
        .with_snapshots(SnapshotPolicy::every_epochs(1, &path))
        .train(&mut model, &data)
        .unwrap();

    // Same snapshot, different schedule length: silently mixing the two
    // would corrupt the β schedule, so it must be refused.
    let mut fresh = tiny_csq_model();
    let err = CsqTrainer::new(tiny_csq_cfg(7))
        .resume_from(&path)
        .train(&mut fresh, &data)
        .unwrap_err();
    assert!(
        matches!(
            err,
            TrainError::Snapshot(SnapshotError::ConfigMismatch { .. })
        ),
        "config drift must be a structured mismatch, got: {err}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
#[should_panic(expected = "lambda must be non-negative")]
fn negative_lambda_rejected() {
    BudgetRegularizer::new(-0.1, 3.0);
}

#[test]
#[should_panic(expected = "target precision must be positive")]
fn zero_target_rejected() {
    BudgetRegularizer::new(0.1, 0.0);
}

#[test]
#[should_panic(expected = "conv input channel mismatch")]
fn wrong_channel_count_rejected() {
    let mut model = tiny_model();
    model.forward(&Tensor::zeros(&[1, 5, 16, 16]), false);
}

#[test]
fn scheme_parser_rejects_malformed_json() {
    assert!(QuantScheme::from_json("{not json").is_err());
    assert!(QuantScheme::from_json("{\"layers\": 3}").is_err());
}

#[test]
fn evaluate_on_mismatched_split_panics_cleanly() {
    // A split whose image geometry doesn't match the model must panic
    // with the conv shape message, not produce silent nonsense.
    let mut model = tiny_model();
    let bad = Split {
        images: Tensor::zeros(&[2, 3, 7, 7]),
        labels: vec![0, 1],
    };
    // 7x7 input still works through GlobalAvgPool (size-agnostic model),
    // so this should NOT panic — documenting the flexible behaviour.
    let (_, acc) = csq_repro::csq::trainer::evaluate(&mut model, &bad, 2);
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn pack_reports_layer_of_failure() {
    use csq_repro::csq::PackedModel;
    let mut model = tiny_model(); // float weights: no grid
    let err = PackedModel::pack(&mut model).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("0.weight") && msg.contains("finalize"),
        "error names the failing layer by path: {msg}"
    );
}

#[test]
fn legacy_v1_snapshot_resumes_bit_exactly() {
    use csq_repro::nn::persist;
    let data = tiny_data();
    let path = temp_snapshot("legacy_v1");
    let epochs = 8;

    // Reference: one uninterrupted run.
    let mut straight_model = tiny_csq_model();
    let straight = CsqTrainer::new(tiny_csq_cfg(epochs))
        .train(&mut straight_model, &data)
        .unwrap();

    // Crashed run writing current (v3, path-keyed) snapshots.
    let mut crashed_model = tiny_csq_model();
    let err = CsqTrainer::new(tiny_csq_cfg(epochs))
        .with_snapshots(SnapshotPolicy::every_epochs(1, &path))
        .with_faults(FaultPlan::default().crash_at_epoch(3))
        .train(&mut crashed_model, &data)
        .unwrap_err();
    assert!(matches!(err, TrainError::InjectedCrash { epoch: 3 }));

    // Rewrite the snapshot file into the pre-path v1 shape a repo from
    // before the named registry would have produced: version 1, every
    // path stripped, checkpoint entries under the old "params" key.
    let payload = persist::read_checksummed(&path).unwrap();
    let mut doc: serde_json::Value = serde_json::from_slice(&payload).unwrap();
    doc["version"] = serde_json::json!(1);
    let strip = |v: &serde_json::Value| -> serde_json::Value {
        serde_json::Value::Array(
            v.as_array()
                .unwrap()
                .iter()
                .map(|pair| pair[1].clone())
                .collect(),
        )
    };
    doc["layer_state"] = strip(&doc["layer_state"]);
    let tensors = strip(&doc["params"]["entries"]);
    doc["params"] = serde_json::json!({ "params": tensors });
    let optim = doc["optim"]
        .as_object_mut()
        .expect("optimizer state is an enum map");
    if let Some(sgd) = optim.get_mut("Sgd") {
        let buffers = strip(&sgd["buffers"]);
        sgd["buffers"] = buffers;
    } else if let Some(adam) = optim.get_mut("Adam") {
        let m = strip(&adam["m"]);
        let v = strip(&adam["v"]);
        adam["m"] = m;
        adam["v"] = v;
    } else {
        panic!("unexpected optimizer encoding: {optim:?}");
    }
    let v1 = serde_json::to_vec(&doc).unwrap();
    persist::write_checksummed(&path, &v1).unwrap();

    // The order-keyed snapshot restores through the compat path and the
    // resumed run reproduces the uninterrupted trajectory bit-for-bit.
    let mut resumed_model = tiny_csq_model();
    let resumed = CsqTrainer::new(tiny_csq_cfg(epochs))
        .resume_from(&path)
        .train(&mut resumed_model, &data)
        .unwrap();

    assert_eq!(straight.history.len(), resumed.history.len());
    for (s, r) in straight.history.iter().zip(resumed.history.iter()) {
        assert_eq!(s.epoch, r.epoch);
        assert_eq!(s.loss, r.loss, "epoch {} loss must be bit-exact", s.epoch);
        assert_eq!(s.avg_bits, r.avg_bits, "epoch {} precision", s.epoch);
        assert_eq!(s.test_acc, r.test_acc, "epoch {} test accuracy", s.epoch);
    }
    assert_eq!(straight.final_avg_bits, resumed.final_avg_bits);
    assert_eq!(straight.final_test_accuracy, resumed.final_test_accuracy);
    std::fs::remove_file(&path).ok();
}
