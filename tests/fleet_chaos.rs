//! Fleet-level chaos drills, driven by the deterministic
//! `csq_core::fault::ChaosPlan` entries the fleet layer consumes:
//! whole-replica-group kills under live multi-tenant load, and
//! registry artifact corruption at scan time.
//!
//! The contract under fire: every affected request gets a *typed*
//! error (never a hang, never a panic), unaffected models keep
//! serving their exact bits (no cross-model contamination), damaged
//! registry entries degrade to the newest healthy version, and
//! redeploying a killed group restores service — with the killed
//! replicas' stats retained in the fleet totals.

use csq_repro::csq::fault::ChaosPlan;
use csq_repro::csq::{PackedWeight, QuantScheme};
use csq_repro::fleet::{FleetConfig, FleetError, FleetStats, ModelRegistry, RegistryFault, Router};
use csq_repro::nn::InferOp;
use csq_repro::serve::{
    CalibrationEntry, EngineConfig, ModelArtifact, ServeError, SubmitOptions, CSQM_FORMAT_VERSION,
};
use csq_repro::tensor::par::ScratchPool;
use csq_repro::tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn toy_artifact(name: &str, offset: i32) -> ModelArtifact {
    ModelArtifact {
        format_version: CSQM_FORMAT_VERSION,
        name: name.to_string(),
        input_dims: vec![3],
        num_classes: 2,
        ops: vec![InferOp::Linear {
            weight: "0.weight".to_string(),
            in_features: 3,
            out_features: 2,
            bias: None,
        }],
        weights: vec![PackedWeight {
            path: "0.weight".to_string(),
            codes: vec![12, -24, 36, -48, 60, -72]
                .into_iter()
                .map(|c| c + offset)
                .collect(),
            step: 0.05,
            dims: vec![2, 3],
            bits: 8.0,
        }],
        scheme: QuantScheme {
            layers: vec![],
            avg_bits: 8.0,
            compression: 4.0,
        },
        calibration: vec![CalibrationEntry {
            weight_path: "0.weight".to_string(),
            step: 0.01,
            observed_lo: 0.0,
            observed_hi: 2.55,
            integer: true,
        }],
    }
}

fn sample(seed: usize) -> Tensor {
    let base = (seed % 13) as f32 * 0.09;
    Tensor::from_vec(vec![base, base + 0.4, base + 0.9], &[3])
}

fn reference_row(artifact: &ModelArtifact, s: &Tensor) -> Vec<f32> {
    let scratch: ScratchPool<u8> = ScratchPool::new();
    let one = s.reshape(&[1, 3]);
    artifact
        .compile()
        .unwrap()
        .forward_batch(&one, &scratch)
        .unwrap()
        .data()
        .to_vec()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("csq-fleet-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Replica-group kill under concurrent two-tenant load: in-flight and
/// subsequent requests to the killed model resolve with typed errors,
/// the surviving model's answers stay bit-exact throughout, and a
/// redeploy restores bit-exact service with history intact.
#[test]
fn group_kill_under_load_degrades_typed_and_recovers() {
    let dir = temp_dir("kill");
    let alpha = toy_artifact("alpha", 0);
    let beta = toy_artifact("beta", 5);
    alpha.save(&dir.join("alpha-v1.csqm")).unwrap();
    beta.save(&dir.join("beta-v1.csqm")).unwrap();
    let reg = ModelRegistry::scan(&dir).unwrap();

    let router = Router::new(FleetConfig {
        replicas_per_model: 2,
        engine: EngineConfig {
            workers: 2,
            max_batch: 4,
            batch_window: Duration::from_millis(1),
            ..EngineConfig::default()
        },
        tenant_quota: None,
    });
    let alpha_v = reg.latest("alpha").unwrap();
    router.deploy(alpha_v).unwrap();
    router.deploy(reg.latest("beta").unwrap()).unwrap();

    let stop = AtomicBool::new(false);
    let mut plan = ChaosPlan::new().kill_replica_group("alpha");

    std::thread::scope(|scope| {
        // Tenant lanes hammer both models; alpha requests may fail
        // once the kill lands, but every single one must resolve to an
        // answer or a typed error — no hangs, no panics.
        let alpha_lane = scope.spawn(|| {
            let mut ok = 0usize;
            let mut down = 0usize;
            for i in 0.. {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let opts = SubmitOptions::default().with_tenant("acme");
                match router.submit("alpha", sample(i), opts) {
                    Ok(ticket) => match ticket.wait() {
                        Ok(got) => {
                            assert_eq!(
                                got.data(),
                                reference_row(&toy_artifact("alpha", 0), &sample(i)).as_slice(),
                                "pre-kill alpha answer {i} must be alpha's bits"
                            );
                            ok += 1;
                        }
                        // A replica dropped mid-flight answers its
                        // drained queue; any error it gives is typed.
                        Err(ServeError::Closed | ServeError::WorkerFailed { .. }) => {}
                        Err(e) => panic!("unexpected serve error: {e}"),
                    },
                    Err(FleetError::ModelDown { model_id }) => {
                        assert_eq!(model_id, "alpha");
                        down += 1;
                        if down > 50 {
                            break;
                        }
                    }
                    Err(FleetError::Serve(ServeError::QueueFull { .. })) => {}
                    Err(e) => panic!("unexpected fleet error: {e}"),
                }
            }
            (ok, down)
        });
        let beta_lane = scope.spawn(|| {
            let mut ok = 0usize;
            for i in 0.. {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let opts = SubmitOptions::default().with_tenant("umbra");
                match router.submit("beta", sample(i), opts) {
                    Ok(ticket) => {
                        let got = ticket.wait().expect("beta must keep serving");
                        assert_eq!(
                            got.data(),
                            reference_row(&toy_artifact("beta", 5), &sample(i)).as_slice(),
                            "beta answer {i} contaminated while alpha was being killed"
                        );
                        ok += 1;
                    }
                    Err(FleetError::Serve(ServeError::QueueFull { .. })) => {}
                    Err(e) => panic!("beta must not fail: {e}"),
                }
            }
            ok
        });

        std::thread::sleep(Duration::from_millis(10));
        let killed = router.apply_chaos(&mut plan);
        assert_eq!(killed, vec!["alpha".to_string()]);
        assert!(plan.is_spent(), "the kill entry fires exactly once");
        assert_eq!(router.replica_count("alpha"), Some(0));

        // The killed group fails fast and typed.
        match router.submit("alpha", sample(0), SubmitOptions::default()) {
            Err(FleetError::ModelDown { model_id }) => assert_eq!(model_id, "alpha"),
            other => panic!("expected ModelDown, got {:?}", other.map(|_| "ticket")),
        }

        std::thread::sleep(Duration::from_millis(10));
        stop.store(true, Ordering::Relaxed);
        let (alpha_ok, alpha_down) = alpha_lane.join().unwrap();
        let beta_ok = beta_lane.join().unwrap();
        assert!(alpha_ok > 0, "alpha must have served before the kill");
        assert!(alpha_down > 0, "alpha must have failed fast after the kill");
        assert!(beta_ok > 0, "beta must have served throughout");
    });

    // History survives the kill: the retired replicas' completions are
    // in the fleet rollup even though their engines are gone.
    let stats = FleetStats::collect(&router);
    let alpha_stats = &stats.models["alpha"];
    assert_eq!(alpha_stats.live_replicas, 0);
    assert_eq!(alpha_stats.retired_replicas, 2);
    assert!(alpha_stats.merged.completed > 0, "retired stats retained");

    // Recovery: redeploy from the registry and serve bit-exact again.
    router.deploy(alpha_v).unwrap();
    assert_eq!(router.replica_count("alpha"), Some(2));
    for i in 0..8 {
        let got = router.infer("alpha", sample(i)).unwrap();
        assert_eq!(got.data(), reference_row(&alpha, &sample(i)).as_slice());
    }
    let stats = FleetStats::collect(&router);
    assert!(stats.models["alpha"].merged.completed >= 8);
    std::fs::remove_dir_all(&dir).ok();
}

/// Registry corruption drill: a chaos-flipped bit in the newest
/// version's file surfaces as a typed fault, the lineage falls back
/// to the newest healthy version, and the fleet serves that version's
/// exact bits.
#[test]
fn corrupted_newest_artifact_falls_back_to_prior_version() {
    let dir = temp_dir("corrupt");
    toy_artifact("alpha", 0)
        .save(&dir.join("alpha-v1.csqm"))
        .unwrap();
    toy_artifact("alpha", 9)
        .save(&dir.join("alpha-v2.csqm"))
        .unwrap();
    toy_artifact("beta", 3)
        .save(&dir.join("beta-v1.csqm"))
        .unwrap();

    // Sorted scan order: [alpha-v1, alpha-v2, beta-v1]; corrupt entry
    // 1 (alpha-v2) in the payload, past the container header.
    let mut plan = ChaosPlan::new().corrupt_registry_entry(1, 64, 3);
    let reg = ModelRegistry::scan_with_chaos(&dir, &mut plan).unwrap();
    assert!(plan.is_spent());

    assert_eq!(reg.faults().len(), 1);
    match &reg.faults()[0] {
        RegistryFault::BadArtifact { path, error } => {
            assert!(path.ends_with("alpha-v2.csqm"));
            // The checksummed container catches the flip before any
            // payload bytes are interpreted.
            let msg = error.to_string();
            assert!(
                msg.contains("container"),
                "corruption must be a container-level error: {msg}"
            );
        }
        other => panic!("expected BadArtifact, got {other}"),
    }

    // Lineage degrades to the newest healthy version; beta untouched.
    assert_eq!(reg.latest("alpha").unwrap().version, 1);
    assert_eq!(reg.lineage("alpha").len(), 1);
    assert_eq!(reg.latest("beta").unwrap().version, 1);

    // And that fallback version actually serves, bit-exact.
    let router = Router::new(FleetConfig {
        replicas_per_model: 1,
        engine: EngineConfig::default(),
        tenant_quota: None,
    });
    router.deploy(reg.latest("alpha").unwrap()).unwrap();
    for i in 0..4 {
        let got = router.infer("alpha", sample(i)).unwrap();
        assert_eq!(
            got.data(),
            reference_row(&toy_artifact("alpha", 0), &sample(i)).as_slice()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Fleet-level tenant quotas: a fixed budget (rate 0) admits exactly
/// `burst` requests per tenant across every replica and model, then
/// sheds that tenant — and only that tenant — with typed
/// `RateLimited` errors, all visible in the router's drop counters.
#[test]
fn fleet_quota_sheds_the_noisy_tenant_only() {
    let dir = temp_dir("quota");
    toy_artifact("alpha", 0)
        .save(&dir.join("alpha-v1.csqm"))
        .unwrap();
    let reg = ModelRegistry::scan(&dir).unwrap();
    let router = Router::new(FleetConfig {
        replicas_per_model: 2,
        engine: EngineConfig::default(),
        tenant_quota: Some(csq_repro::serve::TenantQuota {
            rate_per_sec: 0.0,
            burst: 10.0,
        }),
    });
    router.deploy(reg.latest("alpha").unwrap()).unwrap();

    let mut noisy_ok = 0;
    let mut noisy_limited = 0;
    for i in 0..25 {
        let opts = SubmitOptions::default().with_tenant("noisy");
        match router.submit("alpha", sample(i), opts) {
            Ok(t) => {
                t.wait().unwrap();
                noisy_ok += 1;
            }
            Err(FleetError::Serve(ServeError::RateLimited { tenant })) => {
                assert_eq!(tenant, "noisy");
                noisy_limited += 1;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert_eq!((noisy_ok, noisy_limited), (10, 15));
    // The polite tenant is untouched by the noisy one's exhaustion.
    for i in 0..10 {
        let opts = SubmitOptions::default().with_tenant("polite");
        router
            .submit("alpha", sample(i), opts)
            .unwrap()
            .wait()
            .unwrap();
    }
    let (rejected, shed) = router.drop_totals();
    assert_eq!((rejected, shed), (15, 0));
    let drops = router.tenant_drops();
    assert_eq!(drops["noisy"].rejected, 15);
    assert!(!drops.contains_key("polite"));
    // Rollups carry both scopes: engine-observed completions and
    // router-level rejections.
    let stats = FleetStats::collect(&router);
    assert_eq!(stats.tenants["noisy"].completed, 10);
    assert_eq!(stats.router.rejected, 15);
    let snap = stats.to_metrics_snapshot();
    assert_eq!(snap.counters["fleet.router.tenant.noisy.rejected"], 15);
    std::fs::remove_dir_all(&dir).ok();
}
