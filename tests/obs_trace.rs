//! Tracing and telemetry must be *observers*: with `CSQ_TRACE` (here:
//! the programmatic override) and per-epoch telemetry both on, the
//! training trajectory — every loss, precision, accuracy and final
//! parameter — stays bit-identical to the untraced quiet path, at any
//! worker-thread count.

use csq_repro::csq::prelude::*;
use csq_repro::data::{Dataset, SyntheticSpec};
use csq_repro::nn::models::{resnet_cifar, ModelConfig};
use csq_repro::nn::Checkpoint;
use csq_repro::tensor::par;

fn tiny_data() -> Dataset {
    Dataset::synthetic(
        &SyntheticSpec::cifar_like(0)
            .with_samples(16, 8)
            .with_classes(4)
            .with_noise(0.5),
    )
}

fn tiny_csq_model() -> csq_repro::nn::Sequential {
    let mut factory = csq_factory(8);
    let mut cfg = ModelConfig::cifar_like(4, Some(3), 0);
    cfg.num_classes = 4;
    resnet_cifar(cfg, &mut factory, 1)
}

fn tiny_csq_cfg(epochs: usize) -> CsqConfig {
    let mut cfg = CsqConfig::fast(3.0).with_epochs(epochs);
    cfg.batch_size = 8;
    cfg
}

/// Trains a fresh tiny CSQ model under `threads` workers and returns
/// the report plus every final parameter.
fn train_with_threads(threads: usize, epochs: usize) -> (TrainReport, Checkpoint) {
    par::with_threads(threads, || {
        let data = tiny_data();
        let mut model = tiny_csq_model();
        let report = CsqTrainer::new(tiny_csq_cfg(epochs))
            .train(&mut model, &data)
            .unwrap();
        let ckpt = Checkpoint::capture(&mut model);
        (report, ckpt)
    })
}

fn assert_trajectories_identical(a: &TrainReport, b: &TrainReport, what: &str) {
    assert_eq!(a.history.len(), b.history.len(), "{what}: epoch count");
    for (s, p) in a.history.iter().zip(b.history.iter()) {
        assert_eq!(s, p, "{what}: epoch {} diverged", s.epoch);
    }
    assert_eq!(a.final_avg_bits, b.final_avg_bits, "{what}: final bits");
    assert_eq!(
        a.final_test_accuracy, b.final_test_accuracy,
        "{what}: final accuracy"
    );
}

/// The headline observer test: quiet 1-thread run vs traced+telemetry
/// runs at 1 and 4 threads — all three bit-identical.
#[test]
fn traced_training_is_bit_identical_to_untraced_at_any_thread_count() {
    let epochs = 3;
    let (quiet, quiet_ckpt) = train_with_threads(1, epochs);

    csq_repro::obs::trace::set_enabled(true);
    csq_repro::csq::set_telemetry(true);
    let (traced_1, ckpt_1) = train_with_threads(1, epochs);
    let (traced_4, ckpt_4) = train_with_threads(4, epochs);
    csq_repro::csq::set_telemetry(false);
    csq_repro::obs::trace::set_enabled(false);

    assert_trajectories_identical(&quiet, &traced_1, "traced 1-thread vs quiet");
    assert_trajectories_identical(&quiet, &traced_4, "traced 4-thread vs quiet");
    assert_eq!(quiet_ckpt, ckpt_1, "traced 1-thread parameters diverged");
    assert_eq!(quiet_ckpt, ckpt_4, "traced 4-thread parameters diverged");

    // The traced runs actually traced: epoch/phase spans reached the
    // flight ring, and telemetry reached the global registry.
    let events = csq_repro::obs::flight::global().recent();
    assert!(
        events.iter().any(|e| e.target == "train" && e.name == "epoch"),
        "traced runs must record epoch spans"
    );
    let snap = csq_repro::obs::global_registry().snapshot();
    assert!(
        snap.series.contains_key("train.loss"),
        "telemetry must publish the loss series"
    );
    assert!(
        snap.series.keys().any(|k| k.starts_with("train.layer_bits.")),
        "telemetry must publish per-layer bit series"
    );
}
