//! End-to-end fleet serving: registry → router → rollout.
//!
//! The scenario the fleet layer exists for, asserted bit-for-bit:
//!
//! * a registry directory of versioned `.csqm` artifacts (two models,
//!   three artifact versions) scans into clean per-model lineages;
//! * a router serves two tenants across two models concurrently, and
//!   every fleet answer is bit-identical to a lone engine serving a
//!   single request of the same sample — replication, rendezvous
//!   routing, batching, and tenant multiplexing change *where* a
//!   request runs, never *what* it answers;
//! * a rollout hot-swaps a live replica group to a new version with
//!   the bit-exactness canary passing, under concurrent traffic, and
//!   post-rollout answers are bit-identical to the new version's
//!   reference; a poisoned canary rolls back automatically and leaves
//!   the incumbent serving.

use csq_repro::csq::{PackedWeight, QuantScheme};
use csq_repro::fleet::{
    rollout, rollout_with_expected, FleetConfig, ModelRegistry, RolloutOutcome, Router,
};
use csq_repro::nn::InferOp;
use csq_repro::serve::{
    CalibrationEntry, EngineConfig, ModelArtifact, SubmitOptions, CSQM_FORMAT_VERSION,
};
use csq_repro::tensor::par::ScratchPool;
use csq_repro::tensor::Tensor;
use std::path::Path;
use std::time::Duration;

/// A hand-built deployable 3→2 linear model. No training machinery:
/// the artifact fields are the public contract, and distinct `offset`s
/// give bit-distinguishable versions of the "same" model.
fn toy_artifact(name: &str, offset: i32) -> ModelArtifact {
    ModelArtifact {
        format_version: CSQM_FORMAT_VERSION,
        name: name.to_string(),
        input_dims: vec![3],
        num_classes: 2,
        ops: vec![InferOp::Linear {
            weight: "0.weight".to_string(),
            in_features: 3,
            out_features: 2,
            bias: Some(vec![0.25, -0.25]),
        }],
        weights: vec![PackedWeight {
            path: "0.weight".to_string(),
            codes: vec![10, -20, 30, -40, 50, -60]
                .into_iter()
                .map(|c| c + offset)
                .collect(),
            step: 0.05,
            dims: vec![2, 3],
            bits: 8.0,
        }],
        scheme: QuantScheme {
            layers: vec![],
            avg_bits: 8.0,
            compression: 4.0,
        },
        calibration: vec![CalibrationEntry {
            weight_path: "0.weight".to_string(),
            step: 0.01,
            observed_lo: 0.0,
            observed_hi: 2.55,
            integer: true,
        }],
    }
}

fn sample(seed: usize) -> Tensor {
    let base = (seed % 17) as f32 * 0.07;
    Tensor::from_vec(vec![base, base + 0.5, base + 1.0], &[3])
}

/// What a lone engine answers for one sample: the forward of the
/// artifact's offline compile on a batch of exactly that sample.
fn reference_row(artifact: &ModelArtifact, s: &Tensor) -> Vec<f32> {
    let scratch: ScratchPool<u8> = ScratchPool::new();
    let one = s.reshape(&[1, 3]);
    artifact
        .compile()
        .unwrap()
        .forward_batch(&one, &scratch)
        .unwrap()
        .data()
        .to_vec()
}

fn write_registry(dir: &Path) {
    toy_artifact("alpha", 0)
        .save(&dir.join("alpha-v1.csqm"))
        .unwrap();
    toy_artifact("alpha", 7)
        .save(&dir.join("alpha-v2.csqm"))
        .unwrap();
    toy_artifact("beta", -3)
        .save(&dir.join("beta-v1.csqm"))
        .unwrap();
}

fn temp_registry(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("csq-fleet-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    write_registry(&dir);
    dir
}

#[test]
fn registry_scans_versioned_lineages() {
    let dir = temp_registry("registry");
    let reg = ModelRegistry::scan(&dir).unwrap();
    assert!(
        reg.faults().is_empty(),
        "clean dir must scan clean: {:?}",
        reg.faults()
    );
    assert_eq!(reg.model_ids(), vec!["alpha", "beta"]);
    assert_eq!(reg.version_count(), 3);
    let alpha: Vec<u32> = reg.lineage("alpha").iter().map(|v| v.version).collect();
    assert_eq!(alpha, vec![1, 2]);
    assert_eq!(reg.latest("alpha").unwrap().version, 2);
    assert_eq!(reg.latest("beta").unwrap().version, 1);
    assert_eq!(
        reg.latest("alpha").unwrap().artifact,
        toy_artifact("alpha", 7)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn two_tenants_two_models_answers_are_bit_identical_to_single_engine() {
    let dir = temp_registry("router");
    let reg = ModelRegistry::scan(&dir).unwrap();
    let router = Router::new(FleetConfig {
        replicas_per_model: 2,
        engine: EngineConfig {
            workers: 2,
            max_batch: 4,
            batch_window: Duration::from_millis(1),
            ..EngineConfig::default()
        },
        tenant_quota: None,
    });
    // Serve the *incumbent* alpha (v1) — the rollout test upgrades it.
    let alpha_v1 = &reg.lineage("alpha")[0];
    router.deploy(alpha_v1).unwrap();
    router.deploy(reg.latest("beta").unwrap()).unwrap();

    const PER_LANE: usize = 25;
    let lanes = [
        ("acme", "alpha"),
        ("acme", "beta"),
        ("umbra", "alpha"),
        ("umbra", "beta"),
    ];
    std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .iter()
            .map(|&(tenant, model)| {
                let router = &router;
                scope.spawn(move || {
                    (0..PER_LANE)
                        .map(|i| {
                            let opts = SubmitOptions::default().with_tenant(tenant);
                            let ticket = router.submit(model, sample(i), opts).unwrap();
                            (i, ticket.wait().unwrap())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (handle, &(tenant, model)) in handles.into_iter().zip(&lanes) {
            let artifact = if model == "alpha" {
                toy_artifact("alpha", 0)
            } else {
                toy_artifact("beta", -3)
            };
            for (i, got) in handle.join().unwrap() {
                assert_eq!(
                    got.data(),
                    reference_row(&artifact, &sample(i)).as_slice(),
                    "tenant {tenant} model {model} sample {i} must be bit-identical \
                     to a lone single-request engine"
                );
            }
        }
    });

    let stats = csq_repro::fleet::FleetStats::collect(&router);
    let total: u64 = stats.models.values().map(|m| m.merged.completed).sum();
    assert_eq!(total, (lanes.len() * PER_LANE) as u64);
    for tenant in ["acme", "umbra"] {
        let t = &stats.tenants[tenant];
        assert_eq!(t.completed, 2 * PER_LANE as u64, "tenant {tenant} rollup");
        assert_eq!(t.latency.total(), 2 * PER_LANE as u64);
    }
    // The exposition rehomes per-model and per-tenant metrics.
    let snap = stats.to_metrics_snapshot();
    assert_eq!(
        snap.counters["fleet.tenant.acme.completed"],
        2 * PER_LANE as u64
    );
    assert!(snap.counters.contains_key("fleet.model.alpha.completed"));
    assert!(snap.hists.contains_key("fleet.tenant.umbra.latency_us"));
    assert!(stats
        .to_prometheus()
        .contains("fleet_model_alpha_completed"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rollout_hot_swaps_under_traffic_with_passing_canary() {
    let dir = temp_registry("rollout");
    let reg = ModelRegistry::scan(&dir).unwrap();
    let router = Router::new(FleetConfig {
        replicas_per_model: 3,
        engine: EngineConfig {
            workers: 2,
            max_batch: 4,
            batch_window: Duration::from_millis(1),
            ..EngineConfig::default()
        },
        tenant_quota: None,
    });
    let (v1, v2) = (&reg.lineage("alpha")[0], &reg.lineage("alpha")[1]);
    router.deploy(v1).unwrap();
    assert_eq!(router.deployed_version("alpha"), Some(1));

    let probe = Tensor::from_vec(
        (0..4).flat_map(|i| sample(i).data().to_vec()).collect(),
        &[4, 3],
    );
    std::thread::scope(|scope| {
        // Concurrent traffic throughout the rollout: every answer must
        // match one of the two versions exactly — never a blend.
        let traffic = scope.spawn(|| {
            let mut answers = Vec::new();
            for i in 0..200 {
                answers.push((i, router.infer("alpha", sample(i)).unwrap()));
            }
            answers
        });
        std::thread::sleep(Duration::from_millis(2));
        let report = rollout(&router, "alpha", v2, &probe).unwrap();
        assert_eq!(
            report.outcome,
            RolloutOutcome::Completed,
            "canary must pass"
        );
        assert_eq!(report.replicas_swapped, 3);
        assert_eq!(report.probes_per_replica, 4);
        assert_eq!((report.from_version, report.to_version), (1, 2));
        for (i, got) in traffic.join().unwrap() {
            let old = reference_row(&v1.artifact, &sample(i));
            let new = reference_row(&v2.artifact, &sample(i));
            assert!(
                got.data() == old.as_slice() || got.data() == new.as_slice(),
                "mid-rollout answer {i} must be exactly one version's bits"
            );
        }
    });
    assert_eq!(router.deployed_version("alpha"), Some(2));
    // Post-rollout, the fleet serves the new version's bits.
    for i in 0..8 {
        let got = router.infer("alpha", sample(i)).unwrap();
        assert_eq!(
            got.data(),
            reference_row(&v2.artifact, &sample(i)).as_slice()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn poisoned_canary_rolls_back_to_the_incumbent() {
    let dir = temp_registry("rollback");
    let reg = ModelRegistry::scan(&dir).unwrap();
    let router = Router::new(FleetConfig {
        replicas_per_model: 2,
        engine: EngineConfig::default(),
        tenant_quota: None,
    });
    let (v1, v2) = (&reg.lineage("alpha")[0], &reg.lineage("alpha")[1]);
    router.deploy(v1).unwrap();

    let probe = Tensor::from_vec(
        (0..2).flat_map(|i| sample(i).data().to_vec()).collect(),
        &[2, 3],
    );
    // Pin expectations that v2 cannot meet (they are v1's outputs):
    // the canary must catch it on the first replica and roll back.
    let scratch: ScratchPool<u8> = ScratchPool::new();
    let wrong = v1
        .artifact
        .compile()
        .unwrap()
        .forward_batch(&probe, &scratch)
        .unwrap();
    let report = rollout_with_expected(&router, "alpha", v2, &probe, &wrong).unwrap();
    match &report.outcome {
        RolloutOutcome::RolledBack { reason } => {
            assert!(reason.contains("canary mismatch"), "got: {reason}")
        }
        other => panic!("expected rollback, got {other:?}"),
    }
    assert_eq!(report.replicas_swapped, 1, "abort on the first canary");
    assert_eq!(router.deployed_version("alpha"), Some(1));
    // Every replica still serves the incumbent's bits.
    for i in 0..8 {
        let got = router.infer("alpha", sample(i)).unwrap();
        assert_eq!(
            got.data(),
            reference_row(&v1.artifact, &sample(i)).as_slice()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
