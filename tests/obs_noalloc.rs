//! The quiet-path contract of the tracing facade: while tracing is
//! disabled (the default null sink), `span!` and `event!` must cost one
//! relaxed atomic load and **zero heap allocations** — these macros sit
//! on the serve engine's submit and batch hot paths.
//!
//! A counting global allocator makes the claim checkable, which is why
//! this lives in its own test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_span_and_event_macros_allocate_nothing() {
    csq_repro::obs::trace::set_enabled(false);

    // Warm up: first use may lazily initialize thread-locals.
    {
        let _g = csq_repro::obs::span!("warmup", "span", "k" => 0);
        csq_repro::obs::event!("warmup", "event", "k" => 0);
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        // The exact macro shapes the engine hot path uses: spans with
        // formatted fields and instant events. Disabled, the field
        // expressions must not even be evaluated.
        let _g = csq_repro::obs::span!(
            "engine",
            "batch",
            "worker" => 0,
            "size" => i,
        );
        csq_repro::obs::event!("engine", "submit", "trace_id" => i);
        csq_repro::obs::event!("engine", "reply", "trace_id" => i, "outcome" => "completed");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled tracing macros must not allocate on the hot path"
    );
}
