//! One-off generator for `snapshot_v1_order_keyed.snap`, the committed
//! pre-refactor (schema v1, order-keyed) training snapshot that
//! `tests/legacy_snapshot_fixture.rs` loads through the compat path.
//!
//! Standalone on purpose — it reimplements the CSQF1 framing with no
//! dependency on the workspace, so it keeps producing the bytes a
//! v1-era build would have written even as the workspace moves on.
//! Regenerate (from the repo root) with:
//!
//! ```text
//! rustc --edition 2021 tests/fixtures/gen_v1_fixture.rs -o /tmp/gen_v1_fixture
//! /tmp/gen_v1_fixture tests/fixtures/snapshot_v1_order_keyed.snap
//! ```

/// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320), matching
/// `csq_nn::persist::crc32`.
fn crc32(bytes: &[u8]) -> u32 {
    let mut table = [0u32; 256];
    for i in 0..256u32 {
        let mut c = i;
        for _ in 0..8 {
            c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
        }
        table[i as usize] = c;
    }
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Parameter shapes of the fixture model, in visitation order:
/// `Sequential[Linear(3, 4, bias), Linear(4, 2, bias)]`.
const SHAPES: [&[usize]; 4] = [&[4, 3], &[4], &[2, 4], &[2]];

fn fmt_list<T: std::fmt::Display>(vals: impl Iterator<Item = T>) -> String {
    vals.map(|v| v.to_string()).collect::<Vec<_>>().join(",")
}

fn tensor(shape: &[usize], vals: impl Iterator<Item = f32>) -> String {
    format!(
        "{{\"data\":[{}],\"shape\":[{}]}}",
        fmt_list(vals),
        fmt_list(shape.iter())
    )
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "snapshot_v1_order_keyed.snap".into());
    // Deterministic dyadic values (exactly representable in f32 and in
    // JSON decimal) so the load test can assert bit-exact restoration.
    // The divisor must match `param_val` / `buffer_val` in the test.
    let tensors = |scale: f32| -> String {
        let list: Vec<String> = SHAPES
            .iter()
            .enumerate()
            .map(|(k, shape)| {
                let numel: usize = shape.iter().product();
                tensor(
                    shape,
                    (0..numel).map(move |i| (k * 100 + i + 1) as f32 / scale),
                )
            })
            .collect();
        list.join(",")
    };
    let payload = format!(
        "{{\"version\":1,\"phase\":\"Csq\",\"epochs_done\":2,\"total_epochs\":4,\
         \"beta\":4.5,\"lr_scale\":1,\"seed\":7,\"mask_frozen\":false,\
         \"lambda\":0.25,\"target_bits\":3,\"history\":[],\
         \"params\":{{\"params\":[{}]}},\"layer_state\":[],\
         \"optim\":{{\"Sgd\":{{\"buffers\":[{}]}}}}}}",
        tensors(64.0),
        tensors(256.0)
    );
    let header = format!("CSQF1 {:08x} {}\n", crc32(payload.as_bytes()), payload.len());
    let mut framed = header.into_bytes();
    framed.extend_from_slice(payload.as_bytes());
    std::fs::write(&out, &framed).expect("write fixture");
    println!("wrote {out} ({} bytes)", framed.len());
}
