//! Determinism tests for the data-parallel compute runtime: every result
//! must be bit-identical regardless of worker-thread count, because chunk
//! boundaries and reduction order are fixed functions of tensor shape —
//! never of `CSQ_THREADS`.
//!
//! The headline test trains the same CSQ model twice, once on 1 thread
//! and once on 4, and asserts the *entire training trajectory* — losses,
//! precision schedule, accuracies and every final parameter — is
//! bit-exact. The property tests then pin the individual kernels.

use csq_repro::csq::prelude::*;
use csq_repro::csq::{BitQuantizer, QuantMode};
use csq_repro::data::{Dataset, SyntheticSpec};
use csq_repro::nn::models::{resnet_cifar, ModelConfig};
use csq_repro::nn::{Checkpoint, WeightSource};
use csq_repro::tensor::conv::{conv2d, ConvSpec};
use csq_repro::tensor::{init, par, Tensor};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tiny_data() -> Dataset {
    Dataset::synthetic(
        &SyntheticSpec::cifar_like(0)
            .with_samples(16, 8)
            .with_classes(4)
            .with_noise(0.5),
    )
}

fn tiny_csq_model() -> csq_repro::nn::Sequential {
    let mut factory = csq_factory(8);
    let mut cfg = ModelConfig::cifar_like(4, Some(3), 0);
    cfg.num_classes = 4;
    resnet_cifar(cfg, &mut factory, 1)
}

fn tiny_csq_cfg(epochs: usize) -> CsqConfig {
    let mut cfg = CsqConfig::fast(3.0).with_epochs(epochs);
    cfg.batch_size = 8;
    cfg
}

/// Trains a fresh tiny CSQ model under `threads` workers and returns the
/// full report plus a snapshot of every final parameter.
fn train_with_threads(threads: usize, epochs: usize) -> (TrainReport, Checkpoint) {
    par::with_threads(threads, || {
        let data = tiny_data();
        let mut model = tiny_csq_model();
        let report = CsqTrainer::new(tiny_csq_cfg(epochs))
            .train(&mut model, &data)
            .unwrap();
        let ckpt = Checkpoint::capture(&mut model);
        (report, ckpt)
    })
}

#[test]
fn training_trajectory_identical_at_1_and_4_threads() {
    let epochs = 4;
    let (serial, serial_ckpt) = train_with_threads(1, epochs);
    let (parallel, parallel_ckpt) = train_with_threads(4, epochs);

    assert_eq!(serial.history.len(), parallel.history.len());
    for (s, p) in serial.history.iter().zip(parallel.history.iter()) {
        assert_eq!(s.epoch, p.epoch);
        assert_eq!(s.loss, p.loss, "epoch {} loss must be bit-exact", s.epoch);
        assert_eq!(s.avg_bits, p.avg_bits, "epoch {} precision", s.epoch);
        assert_eq!(s.beta, p.beta, "epoch {} temperature", s.epoch);
        assert_eq!(s.test_acc, p.test_acc, "epoch {} test accuracy", s.epoch);
    }
    assert_eq!(serial.final_avg_bits, parallel.final_avg_bits);
    assert_eq!(serial.final_test_accuracy, parallel.final_test_accuracy);
    assert_eq!(
        serial_ckpt, parallel_ckpt,
        "every final parameter must be bit-identical across thread counts"
    );
}

fn rand_t(seed: u64, dims: &[usize]) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    init::uniform(dims, -1.0, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All three matmul variants are bit-exact across thread counts for
    /// arbitrary (small) shapes and seeds.
    #[test]
    fn matmul_variants_thread_count_invariant(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
    ) {
        let a = rand_t(seed, &[m, k]);
        let b = rand_t(seed + 1, &[k, n]);
        let bt = rand_t(seed + 1, &[n, k]);
        let at = rand_t(seed, &[k, m]);
        for threads in [2usize, 4, 8] {
            let (s, p) = (
                par::with_threads(1, || (a.matmul(&b), a.matmul_nt(&bt), at.matmul_tn(&b))),
                par::with_threads(threads, || (a.matmul(&b), a.matmul_nt(&bt), at.matmul_tn(&b))),
            );
            prop_assert_eq!(s.0.data(), p.0.data());
            prop_assert_eq!(s.1.data(), p.1.data());
            prop_assert_eq!(s.2.data(), p.2.data());
        }
    }

    /// The im2col convolution forward is bit-exact across thread counts.
    #[test]
    fn conv2d_thread_count_invariant(
        n in 1usize..4, ic in 1usize..4, oc in 1usize..5,
        hw in 4usize..9, kernel in 1usize..4, seed in 0u64..1000
    ) {
        let spec = ConvSpec::new(kernel, 1, kernel / 2);
        let x = rand_t(seed, &[n, ic, hw, hw]);
        let w = rand_t(seed + 7, &[oc, ic, kernel, kernel]);
        let s = par::with_threads(1, || conv2d(&x, &w, spec));
        let p = par::with_threads(4, || conv2d(&x, &w, spec));
        prop_assert_eq!(s.data(), p.data());
    }

    /// Bit-level CSQ weight materialization — the per-bit-plane gated sum
    /// — is bit-exact across thread counts.
    #[test]
    fn bit_materialize_thread_count_invariant(
        w in proptest::collection::vec(-2.0f32..2.0, 4..96),
        bits in 1usize..9, beta in 0.5f32..30.0
    ) {
        let t = Tensor::from_slice(&w);
        let s = par::with_threads(1, || {
            let mut q = BitQuantizer::from_float(&t, bits, QuantMode::Csq);
            q.set_beta(beta);
            q.materialize()
        });
        let p = par::with_threads(4, || {
            let mut q = BitQuantizer::from_float(&t, bits, QuantMode::Csq);
            q.set_beta(beta);
            q.materialize()
        });
        prop_assert_eq!(s.data(), p.data());
    }
}
