//! Backward compatibility against a *committed* pre-refactor snapshot.
//!
//! `fixtures/snapshot_v1_order_keyed.snap` is a schema-v1 training
//! snapshot: everything keyed by visitation order, no parameter paths,
//! no `threads` field. The bytes are checked in (generated once by
//! `fixtures/gen_v1_fixture.rs`) so this test keeps failing loudly if a
//! future format change ever breaks the legacy loader — unlike the
//! round-trip tests, it cannot silently co-evolve with the code.

use csq_repro::csq::resume::TrainSnapshot;
use csq_repro::nn::{Layer, Linear, OptimState, Sequential};
use std::path::Path;

/// The architecture the fixture was captured from:
/// `Sequential[Linear(3, 4, bias), Linear(4, 2, bias)]`.
fn fixture_model() -> Sequential {
    Sequential::new(vec![
        Box::new(Linear::with_float_weights(3, 4, 0)) as Box<dyn Layer>,
        Box::new(Linear::with_float_weights(4, 2, 1)),
    ])
}

/// Parameter shapes in visitation order.
const SHAPES: [&[usize]; 4] = [&[4, 3], &[4], &[2, 4], &[2]];

/// Element `i` of parameter tensor `k`, as the generator wrote it.
fn param_val(k: usize, i: usize) -> f32 {
    (k * 100 + i + 1) as f32 / 64.0
}

/// Element `i` of momentum buffer `k`, as the generator wrote it.
fn buffer_val(k: usize, i: usize) -> f32 {
    (k * 100 + i + 1) as f32 / 256.0
}

#[test]
fn committed_v1_snapshot_restores_bit_exactly() {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/snapshot_v1_order_keyed.snap"
    ));
    let snap = TrainSnapshot::load(path).expect("committed v1 fixture must stay loadable");
    assert_eq!(snap.version, 1);
    assert!(TrainSnapshot::LEGACY_VERSIONS.contains(&snap.version));
    assert_eq!(snap.epochs_done, 2);
    assert_eq!(snap.total_epochs, 4);
    assert_eq!(snap.seed, 7);
    assert_eq!(snap.beta, 4.5);
    assert_eq!(snap.lambda, Some(0.25));
    assert_eq!(snap.threads, 0, "v1 files predate the threads field");
    assert!(
        snap.params.entries().iter().all(|(name, _)| name.is_empty()),
        "order-keyed era entries carry no paths"
    );

    // Restoring through the positional compat path reproduces every
    // stored value bit-for-bit.
    let mut model = fixture_model();
    snap.restore_model(&mut model)
        .expect("v1 snapshot must restore into the matching architecture");
    let mut k = 0usize;
    model.visit_params(&mut |p| {
        assert_eq!(p.value.dims(), SHAPES[k], "tensor {k} shape");
        for (i, &v) in p.value.data().iter().enumerate() {
            assert_eq!(v, param_val(k, i), "tensor {k} element {i}");
        }
        k += 1;
    });
    assert_eq!(k, 4, "fixture covers every parameter");

    // The order-keyed optimizer state also survives, names to be adopted
    // on the first step after import.
    match &snap.optim {
        OptimState::Sgd { buffers } => {
            assert_eq!(buffers.len(), 4);
            for (kb, (name, t)) in buffers.iter().enumerate() {
                assert!(name.is_empty(), "v1 buffers carry no paths");
                assert_eq!(t.dims(), SHAPES[kb], "buffer {kb} shape");
                for (i, &v) in t.data().iter().enumerate() {
                    assert_eq!(v, buffer_val(kb, i), "buffer {kb} element {i}");
                }
            }
        }
        other => panic!("fixture carries SGD state, got {other:?}"),
    }
}
