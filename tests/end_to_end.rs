//! End-to-end integration tests spanning every crate: dataset → model →
//! CSQ training → exact quantized scheme.

use csq_repro::csq::prelude::*;
use csq_repro::data::{Dataset, SyntheticSpec};
use csq_repro::nn::models::{resnet_cifar, ModelConfig};
use csq_repro::nn::weight::float_factory;
use csq_repro::nn::Layer;

fn tiny_data() -> Dataset {
    Dataset::synthetic(
        &SyntheticSpec::cifar_like(0)
            .with_samples(16, 8)
            .with_classes(4)
            .with_noise(0.5),
    )
}

fn tiny_cfg(target: f32, epochs: usize) -> CsqConfig {
    let mut cfg = CsqConfig::fast(target).with_epochs(epochs);
    cfg.batch_size = 8;
    cfg
}

#[test]
fn fp_model_learns_the_synthetic_task() {
    let data = tiny_data();
    let mut factory = float_factory();
    let mut model_cfg = ModelConfig::cifar_like(6, None, 0);
    model_cfg.num_classes = 4;
    let mut model = resnet_cifar(model_cfg, &mut factory, 1);
    let mut fit_cfg = FitConfig::fast(12);
    fit_cfg.batch_size = 8;
    let history = fit(&mut model, &data, &fit_cfg, false).unwrap();
    let final_acc = history.last().unwrap().test_acc;
    assert!(
        final_acc > 0.6,
        "FP model should clearly beat 25% chance; got {final_acc}"
    );
}

#[test]
fn csq_pipeline_reaches_target_and_quantizes_exactly() {
    let data = tiny_data();
    let mut factory = csq_factory(8);
    let mut model_cfg = ModelConfig::cifar_like(6, Some(3), 0);
    model_cfg.num_classes = 4;
    let mut model = resnet_cifar(model_cfg, &mut factory, 1);
    let report = CsqTrainer::new(tiny_cfg(3.0, 15))
        .train(&mut model, &data)
        .unwrap();

    // Budget reached.
    assert!(
        (report.final_avg_bits - 3.0).abs() <= 1.0,
        "avg bits {} should be near target 3",
        report.final_avg_bits
    );
    // Model exactly quantized: every weight an integer multiple of the
    // layer's grid step.
    model.visit_weight_sources(&mut |src| {
        let step = src.quant_step().expect("CSQ sources expose a step");
        let w = src.materialize();
        for &v in w.iter() {
            let k = v / step;
            assert!((k - k.round()).abs() < 1e-2, "{v} off grid {step}");
        }
    });
    // Scheme bookkeeping is consistent.
    let total: usize = report.scheme.layers.iter().map(|l| l.numel).sum();
    assert!(total > 0);
    assert!((report.scheme.compression - 32.0 / report.scheme.avg_bits).abs() < 1e-3);
}

#[test]
fn finetune_improves_or_preserves_accuracy_with_fixed_scheme() {
    let data = tiny_data();
    let mut model_cfg = ModelConfig::cifar_like(6, Some(3), 0);
    model_cfg.num_classes = 4;

    let mut factory = csq_factory(8);
    let mut model = resnet_cifar(model_cfg, &mut factory, 1);
    let report = CsqTrainer::new(tiny_cfg(2.0, 10).with_finetune(6))
        .train(&mut model, &data)
        .unwrap();

    let csq_phase_bits: Vec<f32> = report
        .history
        .iter()
        .filter(|h| h.finetune)
        .map(|h| h.avg_bits)
        .collect();
    assert_eq!(csq_phase_bits.len(), 6);
    // Scheme frozen through the finetune phase.
    for w in csq_phase_bits.windows(2) {
        assert_eq!(w[0], w[1], "precision changed during finetuning");
    }
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let data = tiny_data();
        let mut factory = csq_factory(8);
        let mut model_cfg = ModelConfig::cifar_like(6, None, 0);
        model_cfg.num_classes = 4;
        let mut model = resnet_cifar(model_cfg, &mut factory, 1);
        CsqTrainer::new(tiny_cfg(3.0, 6))
            .train(&mut model, &data)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.final_test_accuracy, b.final_test_accuracy);
    assert_eq!(a.final_avg_bits, b.final_avg_bits);
    for (ha, hb) in a.history.iter().zip(b.history.iter()) {
        assert_eq!(
            ha.loss, hb.loss,
            "training must be bit-for-bit reproducible"
        );
    }
}

#[test]
fn scheme_json_round_trip_through_disk() {
    let data = tiny_data();
    let mut factory = csq_factory(8);
    let mut model_cfg = ModelConfig::cifar_like(6, None, 0);
    model_cfg.num_classes = 4;
    let mut model = resnet_cifar(model_cfg, &mut factory, 1);
    let report = CsqTrainer::new(tiny_cfg(3.0, 5))
        .train(&mut model, &data)
        .unwrap();

    let path = std::env::temp_dir().join("csq_e2e_scheme.json");
    std::fs::write(&path, report.scheme.to_json()).unwrap();
    let loaded = QuantScheme::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(loaded, report.scheme);
    std::fs::remove_file(&path).ok();
}

#[test]
fn budget_grows_precision_from_below() {
    // Start from an aggressive scheme (mask init low), target above the
    // start: the regularizer must *grow* bits — the "growing" in the
    // paper's title.
    use csq_repro::csq::bitrep::csq_factory_with_mask_init;
    let data = tiny_data();
    // All mask logits slightly negative: initial hard precision 0.
    let mut factory = csq_factory_with_mask_init(8, -0.1, 0.01);
    let mut model_cfg = ModelConfig::cifar_like(6, None, 0);
    model_cfg.num_classes = 4;
    let mut model = resnet_cifar(model_cfg, &mut factory, 1);
    let start_bits = model_precision(&mut model).avg_bits;
    assert!(start_bits < 1.0, "starts below one bit, got {start_bits}");
    let report = CsqTrainer::new(tiny_cfg(4.0, 12))
        .train(&mut model, &data)
        .unwrap();
    assert!(
        report.final_avg_bits > start_bits + 1.0,
        "budget regularizer should grow precision: {start_bits} -> {}",
        report.final_avg_bits
    );
}

#[test]
fn csq_quantizes_mobilenet_v2() {
    // The paper's intro motivates quantization with mobile architectures;
    // CSQ must work unchanged on depthwise-separable models.
    use csq_repro::nn::models::mobilenet_v2;
    let data = tiny_data();
    let mut factory = csq_factory(8);
    let mut model_cfg = ModelConfig::cifar_like(8, Some(4), 0);
    model_cfg.num_classes = 4;
    let mut model = mobilenet_v2(model_cfg, &mut factory);
    let report = CsqTrainer::new(tiny_cfg(3.0, 6))
        .train(&mut model, &data)
        .unwrap();
    assert!(report.final_avg_bits <= 8.0);
    assert!(
        (report.final_avg_bits - 3.0).abs() <= 2.0,
        "budget steers MobileNet too: {}",
        report.final_avg_bits
    );
    // Depthwise weight sources are exactly quantized as well.
    model.visit_weight_sources(&mut |src| {
        let step = src.quant_step().expect("grid step");
        let w = src.materialize();
        for &v in w.iter() {
            let k = v / step;
            assert!((k - k.round()).abs() < 1e-2);
        }
    });
}
