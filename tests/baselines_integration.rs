//! Integration tests for the baseline quantizers: each trains the same
//! tiny model end to end through the shared `fit` loop.

use csq_repro::baselines::{bsq_factory, dorefa_factory, lq_factory, ste_uniform_factory};
use csq_repro::csq::prelude::*;
use csq_repro::csq::trainer::evaluate;
use csq_repro::data::{Dataset, SyntheticSpec};
use csq_repro::nn::activation::ActMode;
use csq_repro::nn::models::{resnet_cifar, ModelConfig};
use csq_repro::nn::{Layer, WeightSource};
use csq_repro::tensor::Tensor;

fn tiny_data() -> Dataset {
    Dataset::synthetic(
        &SyntheticSpec::cifar_like(0)
            .with_samples(16, 8)
            .with_classes(4)
            .with_noise(0.5),
    )
}

fn train_with(
    factory: &mut dyn FnMut(Tensor) -> Box<dyn WeightSource>,
    act_mode: ActMode,
    epochs: usize,
) -> (f32, csq_repro::nn::Sequential) {
    let data = tiny_data();
    let mut model_cfg = ModelConfig::cifar_like(6, Some(3), 0).with_act_mode(act_mode);
    model_cfg.num_classes = 4;
    let mut model = resnet_cifar(model_cfg, factory, 1);
    let mut cfg = FitConfig::fast(epochs);
    cfg.batch_size = 8;
    fit(&mut model, &data, &cfg, false).unwrap();
    model.visit_weight_sources(&mut |src| src.finalize());
    let (_, acc) = evaluate(&mut model, &data.test, 8);
    (acc, model)
}

#[test]
fn ste_uniform_trains_above_chance() {
    let mut f = ste_uniform_factory(3);
    let (acc, _) = train_with(&mut f, ActMode::Uniform, 12);
    assert!(acc > 0.5, "STE-Uniform should beat 25% chance, got {acc}");
}

#[test]
fn dorefa_trains_above_chance() {
    let mut f = dorefa_factory(3);
    let (acc, _) = train_with(&mut f, ActMode::Uniform, 12);
    assert!(acc > 0.5, "DoReFa should beat 25% chance, got {acc}");
}

#[test]
fn pact_trains_and_adapts_alpha() {
    let mut f = dorefa_factory(3);
    let (acc, _model) = train_with(&mut f, ActMode::Pact, 12);
    assert!(acc > 0.5, "PACT should beat 25% chance, got {acc}");
}

#[test]
fn lq_trains_above_chance() {
    let mut f = lq_factory(2);
    let (acc, _) = train_with(&mut f, ActMode::Uniform, 12);
    assert!(acc > 0.5, "LQ should beat 25% chance, got {acc}");
}

#[test]
fn bsq_trains_and_reports_mixed_precision() {
    let mut f = bsq_factory(8, 1e-3, 3);
    let (acc, mut model) = train_with(&mut f, ActMode::Uniform, 12);
    assert!(acc > 0.5, "BSQ should beat 25% chance, got {acc}");
    let stats = model_precision(&mut model);
    assert!(stats.avg_bits <= 8.0);
    assert!(stats.avg_bits >= 1.0);
}

#[test]
fn all_methods_produce_grid_exact_weights_after_finalize() {
    let factories: Vec<(&str, Box<dyn FnMut(Tensor) -> Box<dyn WeightSource>>)> = vec![
        ("ste", Box::new(ste_uniform_factory(3))),
        ("bsq", Box::new(bsq_factory(8, 1e-3, 3))),
        ("csq", Box::new(csq_factory(8))),
    ];
    for (name, mut f) in factories {
        let (_, mut model) = train_with(&mut *f, ActMode::Uniform, 4);
        model.visit_weight_sources(&mut |src| {
            if let Some(step) = src.quant_step() {
                let w = src.materialize();
                for &v in w.iter() {
                    let k = v / step;
                    assert!((k - k.round()).abs() < 1e-2, "{name}: {v} off grid {step}");
                }
            }
        });
    }
}

#[test]
fn quantized_methods_expose_precisions() {
    let mut f = ste_uniform_factory(4);
    let (_, mut model) = train_with(&mut f, ActMode::Uniform, 2);
    let stats = model_precision(&mut model);
    assert_eq!(stats.avg_bits, 4.0);
    assert!((stats.compression_ratio() - 8.0).abs() < 1e-5);
}
