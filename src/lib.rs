//! Umbrella crate for the CSQ reproduction workspace.
//!
//! Re-exports every sub-crate under one name so the examples and
//! integration tests can use a single dependency:
//!
//! * [`tensor`] — dense f32 tensors, matmul, conv, pooling
//! * [`nn`] — layers, models, losses, optimizers (exact backprop)
//! * [`data`] — synthetic CIFAR-10/ImageNet stand-in datasets
//! * [`csq`] — the CSQ algorithm (gates, bit-level parameterization,
//!   budget regularization, Algorithm-1 trainer, scheme extraction)
//! * [`baselines`] — STE-Uniform, DoReFa, PACT, LQ-Nets-style, BSQ
//! * [`serve`] — deployment: `.csqm` artifacts, activation calibration,
//!   micro-batching integer inference engine
//! * [`fleet`] — multi-model serving: versioned artifact registry,
//!   replica routing with per-tenant admission, canaried rollouts,
//!   fleet-wide stats rollups
//! * [`obs`] — telemetry: metrics registry, span tracing, kernel
//!   profiler, crash flight recorder
//!
//! See the repository README for a walkthrough and `cargo run --example
//! quickstart --release` for a first contact.

pub use csq_baselines as baselines;
pub use csq_core as csq;
pub use csq_data as data;
pub use csq_fleet as fleet;
pub use csq_nn as nn;
pub use csq_obs as obs;
pub use csq_serve as serve;
pub use csq_tensor as tensor;
